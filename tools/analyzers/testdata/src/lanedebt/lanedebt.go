// Fixture for the lanedebt pass: a self-contained miniature of the
// internal/core hot-lock ticket-lane shapes (DESIGN.md §14). The leaky
// functions reproduce the PR 9 bug class — a tail FAA whose head
// advance is lost on some path wedges every waiter behind it.
package lanedebt

// Endpoint mirrors rdma.Endpoint's atomic verbs (matched by name).
type Endpoint struct{}

func (ep *Endpoint) FAA(addr *uint64, delta uint64) (uint64, error) { return 0, nil }
func (ep *Endpoint) CAS(addr *uint64, old, swap uint64) (uint64, bool, error) {
	return 0, false, nil
}

// Lane mirrors hotlock.Lane: the doorbell pair.
type Lane struct {
	Head uint64
	Tail uint64
}

type queueState struct {
	lane        Lane
	ticket      uint64
	joined      bool
	transferred bool
}

type writeEnt struct {
	queued    bool
	queueHead uint64
}

type Coord struct{ ep *Endpoint }

func (co *Coord) crash() error { return nil }

// queueJoin is the primitive joiner: it takes the ticket and publishes
// the debt into the caller's queue state (summarized as a joiner).
func (co *Coord) queueJoin(q *queueState) error {
	t, err := co.ep.FAA(&q.lane.Tail, 1)
	if err != nil {
		return err
	}
	q.ticket = t
	q.joined = true
	return nil
}

// Op mirrors rdma.Op for the speculative-ticket shapes (§16): the FAA
// is armed into a batch op and rides another doorbell.
type Op struct {
	Kind  int
	Addr  *uint64
	Delta uint64
	Old   uint64
	Err   error
}

// queueAbsorb mirrors the fused-doorbell absorb: the ticket FAA already
// rode the lock doorbell; absorbing its .Old result publishes the debt
// into the caller's queue state (summarized as a joiner via the .Old
// read — it never calls FAA itself).
func (co *Coord) queueAbsorb(q *queueState, lane Lane, op *Op) {
	if op.Err != nil {
		return
	}
	q.lane = lane
	q.joined = true
	q.ticket = op.Old
}

// payLaneDebt is the primitive settler: one head advance (summarized
// as a settler).
func (co *Coord) payLaneDebt(lane *Lane) {
	_, _ = co.ep.FAA(&lane.Head, 1)
}

// unlockAll is the package-level release of transferred debt: it is
// what makes `.transferred = true` legal at all.
func (co *Coord) unlockAll(writes []*writeEnt) {
	for _, w := range writes {
		if w.queued {
			_, _ = co.ep.FAA(&w.queueHead, 1)
		}
	}
}

// goodSettle pays its own debt before returning.
func (co *Coord) goodSettle(q *queueState) error {
	if err := co.queueJoin(q); err != nil {
		return err
	}
	co.payLaneDebt(&q.lane)
	return nil
}

// goodDefer is the stageLockedWrite idiom: a gated defer covers every
// exit after the join.
func (co *Coord) goodDefer(q *queueState, busy bool) error {
	defer func() {
		if q.joined && !q.transferred {
			co.payLaneDebt(&q.lane)
		}
	}()
	if err := co.queueJoin(q); err != nil {
		return err
	}
	if busy {
		return nil
	}
	return nil
}

// goodTransfer hands the debt to the write entry; unlockAll's queueHead
// FAA settles it at commit/abort.
func (co *Coord) goodTransfer(q *queueState, w *writeEnt) error {
	if err := co.queueJoin(q); err != nil {
		return err
	}
	w.queued = true
	w.queueHead = q.lane.Head
	q.transferred = true
	return nil
}

// goodCrash abandons the ticket on a simulated node death — the one
// path recovery is specified to repair.
func (co *Coord) goodCrash(q *queueState, die bool) error {
	if err := co.queueJoin(q); err != nil {
		return err
	}
	if die {
		return co.crash()
	}
	co.payLaneDebt(&q.lane)
	return nil
}

// goodAbsorbTransfer is the fused stageLockedWrite shape: the
// speculative ticket is absorbed after the doorbell and the debt is
// transferred to the write entry on acquisition.
func (co *Coord) goodAbsorbTransfer(q *queueState, w *writeEnt, op *Op) error {
	co.queueAbsorb(q, Lane{}, op)
	w.queued = true
	w.queueHead = q.lane.Head
	q.transferred = true
	return nil
}

// goodAbsorbDefer: the gated defer covers an absorbed ticket exactly
// like a joined one.
func (co *Coord) goodAbsorbDefer(q *queueState, op *Op, busy bool) error {
	defer func() {
		if q.joined && !q.transferred {
			co.payLaneDebt(&q.lane)
		}
	}()
	co.queueAbsorb(q, Lane{}, op)
	if busy {
		return nil
	}
	return nil
}

// leakAbsorb absorbs a speculative ticket and forgets the debt — the
// fused-doorbell variant of leakReturn.
func (co *Coord) leakAbsorb(q *queueState, op *Op) error {
	co.queueAbsorb(q, Lane{}, op)
	return nil // want "ticket-lane debt of q is unsettled"
}

// leakReturn forgets the head advance entirely.
func (co *Coord) leakReturn(q *queueState) error {
	if err := co.queueJoin(q); err != nil {
		return err
	}
	return nil // want "ticket-lane debt of q is unsettled"
}

// leakRaw is the same leak through the raw verb rather than the helper.
func (co *Coord) leakRaw(q *queueState) error {
	_, err := co.ep.FAA(&q.lane.Tail, 1)
	if err != nil {
		return err
	}
	return nil // want "ticket-lane debt of q is unsettled"
}

// leakZero is the exact PR 9 leak shape, in the local-variable form the
// real stageLockedWrite uses: the mismatch path re-queues by zeroing
// the queue state while the ticket is outstanding. The gated defer
// reads q.joined and pays nothing — deleting the settle before the
// zeroing wedges the lane.
func (co *Coord) leakZero(retry bool) error {
	q := queueState{}
	defer func() {
		if q.joined && !q.transferred {
			co.payLaneDebt(&q.lane)
		}
	}()
	if err := co.queueJoin(&q); err != nil {
		return err
	}
	if retry {
		q = queueState{} // want "zeroed while its ticket-lane debt is outstanding"
	}
	return nil
}

// leakDespiteRepair: a guarded head CAS repairs OTHER participants'
// debt (queueWait's fallback race) and must not clear this function's
// own ticket.
func (co *Coord) leakDespiteRepair(q *queueState, head uint64) error {
	if err := co.queueJoin(q); err != nil {
		return err
	}
	_, _, _ = co.ep.CAS(&q.lane.Head, head, head+1)
	return nil // want "ticket-lane debt of q is unsettled"
}

// allowedLeak: the escape hatch for debt proven settled out-of-band.
func (co *Coord) allowedLeak(q *queueState) error {
	if err := co.queueJoin(q); err != nil {
		return err
	}
	//pandora:lanedebt settled by the caller's reaper (fixture exercise of the directive)
	return nil
}
