// Fixture for the journalstate pass: a self-contained miniature of the
// internal/reconfig migration journal (PR 8). A journal image read back
// from the replicated journal may only take legal state-machine steps
// (pending → copying → cutover → done), and once mutated must be
// persisted before the function gives up control.
package journalstate

// PartitionState mirrors reconfig.PartitionState (matched by type name).
type PartitionState uint8

const (
	StatePending PartitionState = iota
	StateCopying
	StateCutover
	StateDone
)

const (
	phaseRunning  = 1
	phaseComplete = 2
)

type image struct {
	seq    uint64
	phase  uint8
	states []PartitionState
}

func (im *image) clone() *image {
	out := &image{seq: im.seq, phase: im.phase}
	out.states = append(out.states, im.states...)
	return out
}

type Ctl struct{ n int }

func (c *Ctl) freshImage() (*image, error) {
	return &image{states: make([]PartitionState, c.n)}, nil
}

func (c *Ctl) writeJournal(im *image) error {
	im.seq++
	return nil
}

// goodInit is the Run idiom: a freshly built LOCAL image may carry any
// seed states and the running phase; persistence is the step closure's
// business.
func (c *Ctl) goodInit(parts []int) error {
	im := &image{phase: phaseRunning, states: make([]PartitionState, len(parts))}
	for i := range parts {
		im.states[i] = StateCopying
	}
	return c.writeJournal(im)
}

// goodStep is the advancePartition idiom: the `<` guard rules out
// skipping or rewinding, and the store is persisted before returning.
func (c *Ctl) goodStep(p int) error {
	im, err := c.freshImage()
	if err != nil {
		return err
	}
	if im.states[p] < StateCopying {
		im.states[p] = StateCopying
	}
	return c.writeJournal(im)
}

// goodEq advances by exactly one state under an equality guard.
func (c *Ctl) goodEq(p int) error {
	im, err := c.freshImage()
	if err != nil {
		return err
	}
	if im.states[p] == StateCopying {
		im.states[p] = StateCutover
	}
	return c.writeJournal(im)
}

// finalize: the terminal state and the complete phase are idempotent
// and always legal, even unguarded.
func (c *Ctl) finalize() error {
	im, err := c.freshImage()
	if err != nil {
		return err
	}
	im.phase = phaseComplete
	for i := range im.states {
		im.states[i] = StateDone
	}
	return c.writeJournal(im)
}

// skipState is the must-flag shape: an equality guard on an earlier
// state persists a transition that skips StateCopying entirely — a
// recovering coordinator replaying the journal would never copy.
func (c *Ctl) skipState(p int) error {
	im, err := c.freshImage()
	if err != nil {
		return err
	}
	if im.states[p] == StatePending {
		im.states[p] = StateCutover // want "skips the state machine"
	}
	return c.writeJournal(im)
}

// unguarded persists a non-terminal state with no dominating guard: a
// replay can rewind a partition that had already cut over.
func (c *Ctl) unguarded(p int) error {
	im, err := c.freshImage()
	if err != nil {
		return err
	}
	im.states[p] = StateCopying // want "unguarded journal state store"
	return c.writeJournal(im)
}

// reopen flips a journaled image back to the running phase.
func (c *Ctl) reopen() error {
	im, err := c.freshImage()
	if err != nil {
		return err
	}
	im.phase = phaseRunning // want "re-opened with phaseRunning"
	return c.writeJournal(im)
}

// dropped mutates the journal image and forgets to persist it.
func (c *Ctl) dropped(p int) error {
	im, err := c.freshImage()
	if err != nil {
		return err
	}
	if im.states[p] < StateCopying {
		im.states[p] = StateCopying
	}
	return nil // want "without writeJournal"
}

// cloneLeak: a clone of a journal image is still journal state.
func (c *Ctl) cloneLeak(src *image) error {
	im := src.clone()
	im.phase = phaseComplete
	return nil // want "without writeJournal"
}

// deferredPersist: the escape hatch for persistence proven out-of-band.
func (c *Ctl) deferredPersist(p int) error {
	im, err := c.freshImage()
	if err != nil {
		return err
	}
	im.states[p] = StateDone
	//pandora:journalstate persisted by the caller's batched write (fixture exercise)
	return nil
}
