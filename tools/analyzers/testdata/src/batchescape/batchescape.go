// Fixture for the batchescape pass: values backed by a pooled
// OpBatch's arena escaping the owning frame.
package batchescape

// Op mirrors rdma.Op.
type Op struct {
	Addr uint64
	Buf  []byte
}

// OpBatch mirrors rdma.OpBatch's derive surface (matched by type name).
type OpBatch struct{}

func (b *OpBatch) Add() *Op                            { return &Op{} }
func (b *OpBatch) AddRead(addr uint64, dst []byte) *Op { return &Op{Addr: addr, Buf: dst} }
func (b *OpBatch) Ops() []*Op                          { return nil }
func (b *OpBatch) Bytes(n int) []byte                  { return make([]byte, n) }
func (b *OpBatch) Put()                                {}

// GetBatch mirrors rdma.GetBatch.
func GetBatch() *OpBatch { return &OpBatch{} }

type ent struct {
	pending *Op
	buf     []byte
}

// goodLocalUse keeps everything inside the frame.
func goodLocalUse(addr uint64) int {
	b := GetBatch()
	defer b.Put()
	op := b.AddRead(addr, b.Bytes(16))
	return len(op.Buf)
}

// goodBuilderHelper derives from a caller-owned batch: the caller
// controls Put, so handing the op back is the normal builder shape.
func goodBuilderHelper(b *OpBatch, addr uint64) *Op {
	return b.AddRead(addr, b.Bytes(8))
}

// badFieldStore stashes an arena-backed op past Put.
func badFieldStore(e *ent, addr uint64) {
	b := GetBatch()
	defer b.Put()
	op := b.Add()
	op.Addr = addr
	e.pending = op     // want "stored to a field"
	e.buf = b.Bytes(8) // want "stored to a field"
}

// badReturn hands recycled memory to the caller.
func badReturn(addr uint64) *Op {
	b := GetBatch()
	defer b.Put()
	return b.AddRead(addr, b.Bytes(8)) // want "returned"
}

// badGoroutineCapture races the pool.
func badGoroutineCapture(addr uint64, done chan<- int) {
	b := GetBatch()
	defer b.Put()
	op := b.AddRead(addr, b.Bytes(8))
	go func() { // want "captured by a goroutine"
		done <- len(op.Buf)
	}()
}
