// Fixture for the lockword pass: hand-rolled PILL lock-word bit
// manipulation outside internal/kvlayout.
package lockword

// CoordID mirrors kvlayout.CoordID (matched by type name).
type CoordID uint16

const lockedFlag = uint64(1) << 63

// handRolledLockWord rebuilds the encoding kvlayout.LockWord owns.
func handRolledLockWord(owner CoordID, tag uint32) uint64 {
	return lockedFlag | uint64(owner)<<32 | uint64(tag) // want "raw bit operation with the lock-word locked flag"
}

// handRolledPack packs the owner field without the flag.
func handRolledPack(owner CoordID, tag uint32) uint64 {
	return uint64(owner)<<32 | uint64(tag) // want "raw owner-field shift on a lock word"
}

// handRolledIsLocked duplicates kvlayout.IsLocked.
func handRolledIsLocked(word uint64) bool {
	return word&lockedFlag != 0 // want "raw bit operation with the lock-word locked flag"
}

// handRolledOwner duplicates kvlayout.LockOwner.
func handRolledOwner(word uint64) CoordID {
	return CoordID(word >> 32) // want "raw owner-field extraction into CoordID"
}

// literalFlag uses the numeric literal directly.
func literalFlag(word uint64) bool {
	return word&0x8000000000000000 != 0 // want "raw bit operation with the lock-word locked flag"
}

// unrelatedBits: other constants and widths stay legal.
func unrelatedBits(x uint64, y uint32) uint64 {
	regionFlag := uint64(1) << 31
	_ = y << 16
	return x | regionFlag
}

// unrelatedShift32: a 32-bit shift with no CoordID involvement is fine.
func unrelatedShift32(x uint64) uint64 {
	return x >> 32 & 0xff
}

// ---- ticket words ---------------------------------------------------------

const ticketSeqMask = uint64(1)<<48 - 1

// handRolledTicketSeq duplicates kvlayout.TicketSeq.
func handRolledTicketSeq(word uint64) uint64 {
	return word & ticketSeqMask // want "raw bit operation with the ticket-sequence mask"
}

// literalTicketMask uses the numeric literal directly.
func literalTicketMask(word uint64) uint64 {
	return word & 0xFFFFFFFFFFFF // want "raw bit operation with the ticket-sequence mask"
}

// handRolledTurnCheck masks both sides of a ticket comparison.
func handRolledTurnCheck(head, ticket uint64) bool {
	return head&ticketSeqMask >= ticket // want "raw bit operation with the ticket-sequence mask"
}

// unrelatedTicketWidths: the same mask on narrower ints stays legal
// (not a wire-format ticket word).
func unrelatedTicketWidths(x uint32) uint32 {
	return x & 0xFFFF
}
