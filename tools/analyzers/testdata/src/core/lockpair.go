// Fixture for the lockpair pass: a self-contained miniature of the
// internal/core locking shapes. The leaky functions reproduce the
// exact bug class PR 1 fixed by hand — a path out of the function
// between the lock CAS and the write-set registration leaked the lock.
package core

// Endpoint mirrors rdma.Endpoint's verb surface (matched by type name).
type Endpoint struct{}

func (ep *Endpoint) Read(addr uint64, buf []byte) error              { return nil }
func (ep *Endpoint) Write(addr uint64, buf []byte) error             { return nil }
func (ep *Endpoint) CAS(addr, old, new uint64) (uint64, bool, error) { return 0, false, nil }
func (ep *Endpoint) Do(ops ...*Op) error                             { return nil }
func (ep *Endpoint) DoSeq(ops ...*Op) error                          { return nil }

// Op mirrors rdma.Op.
type Op struct {
	Kind    int
	Addr    uint64
	Expect  uint64
	Swap    uint64
	Buf     []byte
	Swapped bool
}

type writeEnt struct {
	locked bool
}

type Tx struct {
	ep     *Endpoint
	writes []*writeEnt
}

func (tx *Tx) lockWord() uint64 { return 1 }

func (tx *Tx) failLocked(ent *writeEnt, err error) error {
	ent.locked = true
	tx.writes = append(tx.writes, ent)
	return err
}

func (tx *Tx) unlockAddr(addr uint64) error { return nil }
func (tx *Tx) crash() error                 { return nil }

// goodLock is the fixed PR 1 shape: the doorbell's error path hands the
// possibly-taken lock to failLocked (or proves the CAS never fired via
// Swapped), and the entry is registered before any further exit.
func (tx *Tx) goodLock(addr uint64, buf []byte) error {
	ent := &writeEnt{}
	lockOp := &Op{Swap: tx.lockWord()}
	readOp := &Op{Buf: buf}
	if err := tx.ep.Do(lockOp, readOp); err != nil {
		if lockOp.Swapped {
			return tx.failLocked(ent, err)
		}
		return err
	}
	ent.locked = true
	tx.writes = append(tx.writes, ent)
	if err := tx.ep.Write(addr+8, buf); err != nil {
		return tx.failLocked(ent, err)
	}
	return nil
}

// goodSingleCAS: a single-op CAS post may return on its error — link
// admission precedes execution, so an errored single CAS never took
// the lock — and the swapped-false edge proves the word was not taken.
func (tx *Tx) goodSingleCAS(addr, old uint64) error {
	ent := &writeEnt{}
	if _, stole, err := tx.ep.CAS(addr, old, tx.lockWord()); err != nil || !stole {
		return err
	}
	ent.locked = true
	tx.writes = append(tx.writes, ent)
	return nil
}

// goodBackout releases the word instead of registering it: the
// slot-moved back-out idiom. A failed release hands the lock over.
func (tx *Tx) goodBackout(addr, old uint64) error {
	ent := &writeEnt{}
	_, stole, err := tx.ep.CAS(addr, old, tx.lockWord())
	if err != nil {
		return err
	}
	if !stole {
		return nil
	}
	if err := tx.unlockAddr(addr); err != nil {
		return tx.failLocked(ent, err)
	}
	return nil
}

// goodCrashExit abandons the lock on a simulated node death — the one
// path recovery is specified to repair.
func (tx *Tx) goodCrashExit(addr, old uint64, die bool) error {
	ent := &writeEnt{}
	_, stole, err := tx.ep.CAS(addr, old, tx.lockWord())
	if err != nil || !stole {
		return err
	}
	if die {
		return tx.crash()
	}
	ent.locked = true
	tx.writes = append(tx.writes, ent)
	return nil
}

// leakyDoorbell drops the doorbell's error without consulting Swapped:
// the CAS may have taken the lock while the READ faulted, and the
// error return leaks it.
func (tx *Tx) leakyDoorbell(buf []byte) error {
	ent := &writeEnt{}
	lockOp := &Op{Swap: tx.lockWord()}
	readOp := &Op{Buf: buf}
	if err := tx.ep.Do(lockOp, readOp); err != nil { // want "doorbell posting a lock CAS can reach a function exit"
		return err
	}
	ent.locked = true
	tx.writes = append(tx.writes, ent)
	return nil
}

// leakyErrReturn registers too late: the verb between the acquisition
// and the registration returns its fault while the lock is held but
// unknown to the write set.
func (tx *Tx) leakyErrReturn(addr uint64, buf []byte) error {
	ent := &writeEnt{}
	lockOp := &Op{Swap: tx.lockWord()}
	readOp := &Op{Buf: buf}
	if err := tx.ep.Do(lockOp, readOp); err != nil { // want "doorbell posting a lock CAS can reach a function exit"
		if lockOp.Swapped {
			return tx.failLocked(ent, err)
		}
		return err
	}
	if err := tx.ep.Write(addr+8, buf); err != nil {
		return err
	}
	ent.locked = true
	tx.writes = append(tx.writes, ent)
	return nil
}

// leakyNeverRegistered takes a lock and forgets it entirely.
func (tx *Tx) leakyNeverRegistered(addr, old uint64) error {
	_, _, err := tx.ep.CAS(addr, old, tx.lockWord()) // want "lock-acquiring CAS can reach a function exit"
	return err
}

// ackTx mirrors the commit-tail surface of the ack-obligation rule
// (DESIGN.md §16): once AckedCommit is set, the locks must reach a
// release path before any non-crash exit.
type ackTx struct {
	writes      []*writeEnt
	AckedCommit bool
	async       bool
}

func (tx *ackTx) unlockAll(abortPath bool) error         { return nil }
func (tx *ackTx) handoffTail(ackedAt int64)              {}
func (tx *ackTx) postAckFailure(err error) error         { return err }
func (tx *ackTx) truncateLogs() error                    { return nil }
func (tx *ackTx) appendReleaseOps(b *Op, abortPath bool) {}
func (tx *ackTx) crash() error                           { return nil }
func (tx *ackTx) release()                               {}

// goodCommitTail is the real Commit shape: the read-only ack is exempt
// (no locks exist), the async branch hands the tail to the drain, the
// sync branch unlocks, and post-ack failures route to the sanctioned
// exit.
func (tx *ackTx) goodCommitTail(die bool) error {
	if len(tx.writes) == 0 {
		tx.AckedCommit = true
		tx.release()
		return nil
	}
	tx.AckedCommit = true
	if die {
		return tx.crash()
	}
	if tx.async {
		tx.handoffTail(7)
		tx.release()
		return nil
	}
	if err := tx.truncateLogs(); err != nil {
		return tx.postAckFailure(err)
	}
	if err := tx.unlockAll(false); err != nil {
		return tx.postAckFailure(err)
	}
	tx.release()
	return nil
}

// goodFusedTail releases through the staged batch.
func (tx *ackTx) goodFusedTail(b *Op) error {
	tx.AckedCommit = true
	tx.appendReleaseOps(b, false)
	tx.release()
	return nil
}

// leakyAckedTail is the deleted-hand-off leak: the async branch returns
// at the ack without giving the tail to the drain, so the acked
// transaction's locks are owned by nobody.
func (tx *ackTx) leakyAckedTail() error {
	if len(tx.writes) == 0 {
		tx.AckedCommit = true
		return nil
	}
	tx.AckedCommit = true // want "acknowledged commit can reach a function exit"
	tx.release()
	return nil
}
