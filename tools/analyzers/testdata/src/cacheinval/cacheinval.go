// Fixture for the cacheinval pass: a self-contained miniature of the
// internal/core lock-word steal shapes (PR 4). A CAS that takes over an
// existing lock word means the previous owner failed — cached images of
// the key are stale the moment the steal lands.
package cacheinval

// Endpoint mirrors rdma.Endpoint's CAS verb (matched by name).
type Endpoint struct{}

func (ep *Endpoint) CAS(addr *uint64, old, swap uint64) (uint64, bool, error) {
	return 0, false, nil
}

// lockWord mirrors the kvlayout lock-word constructor (matched by name).
func lockWord(owner uint64) uint64 { return owner<<1 | 1 }

type epoch struct{ n uint64 }

func (e *epoch) Add(d uint64) uint64 { e.n += d; return e.n }

type bitset struct{ bits uint64 }

func (b *bitset) Set(i int) { b.bits |= 1 << uint(i) }

type Tx struct {
	ep         *Endpoint
	cacheEpoch *epoch
	failed     *bitset
}

func (tx *Tx) invalidateCached(key uint64) {}
func (tx *Tx) crash() error                { return nil }

// goodSteal is the sanctioned shape: the landed steal drops the cached
// entry before the function returns.
func (tx *Tx) goodSteal(addr *uint64, old, me uint64) error {
	_, stole, err := tx.ep.CAS(addr, old, lockWord(me))
	if err != nil {
		return err
	}
	if stole {
		tx.invalidateCached(*addr)
	}
	return nil
}

// goodStealEpoch discharges the obligation with an epoch bump instead.
func (tx *Tx) goodStealEpoch(addr *uint64, old, me uint64) {
	_, _, _ = tx.ep.CAS(addr, old, lockWord(me))
	tx.cacheEpoch.Add(1)
}

// acquire takes a fresh lock over a free word (expect == 0): no steal,
// no obligation.
func (tx *Tx) acquire(addr *uint64, me uint64) error {
	_, ok, err := tx.ep.CAS(addr, 0, lockWord(me))
	_ = ok
	return err
}

// release returns a lock word (swap == 0): no steal, no obligation.
func (tx *Tx) release(addr *uint64, word uint64) error {
	_, _, err := tx.ep.CAS(addr, word, 0)
	return err
}

// goodFail pairs the failed-coordinator bits with the epoch bump.
func (tx *Tx) goodFail(i int) {
	tx.failed.Set(i)
	tx.cacheEpoch.Add(1)
}

// stealCrash abandons the obligation on a simulated node death, which
// recovery (and the epoch bump in the failure notification) repairs.
func (tx *Tx) stealCrash(addr *uint64, old, me uint64) error {
	_, _, _ = tx.ep.CAS(addr, old, lockWord(me))
	return tx.crash()
}

// leakSteal returns with the steal landed and the cache untouched.
func (tx *Tx) leakSteal(addr *uint64, old, me uint64) error {
	_, stole, err := tx.ep.CAS(addr, old, lockWord(me))
	if err != nil {
		return err
	}
	if stole {
		return nil // want "without a cache invalidation"
	}
	return nil
}

// blindSteal discards the swapped result: the steal may have landed, so
// the obligation binds unconditionally.
func (tx *Tx) blindSteal(addr *uint64, old, me uint64) {
	_, _, _ = tx.ep.CAS(addr, old, lockWord(me))
} // want "without a cache invalidation"

// leakFail sets failure bits without stopping pre-failure cache hits.
func (tx *Tx) leakFail(i int) {
	tx.failed.Set(i)
} // want "without a cache-epoch bump"

// callerInvalidates: the escape hatch for invalidation proven to happen
// at the caller.
func (tx *Tx) callerInvalidates(addr *uint64, old, me uint64) (bool, error) {
	_, stole, err := tx.ep.CAS(addr, old, lockWord(me))
	//pandora:cacheinval caller invalidates on the stole=true return (fixture exercise)
	return stole, err
}
