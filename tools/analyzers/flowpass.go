package analyzers

// Shared plumbing for the flow-sensitive passes (lanedebt, abortcause,
// cacheinval, journalstate, lockpair): function-unit collection (decl
// bodies plus every function literal, each analyzed as its own CFG),
// shallow subtree scanning that respects the unit boundary, constant
// resolution, and a concurrent per-unit driver (the worklist engine is
// pure; only Report needs serialising).

import (
	"go/ast"
	"go/constant"
	"runtime"
	"sync"
)

// funcUnit is one analyzable body: a declared function or a function
// literal.
type funcUnit struct {
	file *ast.File
	decl *ast.FuncDecl // nil for literals
	lit  *ast.FuncLit  // nil for declared functions
	body *ast.BlockStmt
}

// name returns the declared name, or "" for a literal.
func (u funcUnit) name() string {
	if u.decl != nil {
		return u.decl.Name.Name
	}
	return ""
}

// funcUnits collects every function body in the package as a separate
// unit: declared functions and, nested at any depth, function literals
// (closures are separate control-flow universes — a deferred closure
// runs at exit, a step() callback runs elsewhere entirely).
func (p *Pass) funcUnits(skipTests bool) []funcUnit {
	var units []funcUnit
	for _, file := range p.Files {
		if skipTests && p.isTestFile(file) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			units = append(units, funcUnit{file: file, decl: fd, body: fd.Body})
			f := file
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					units = append(units, funcUnit{file: f, lit: fl, body: fl.Body})
				}
				return true
			})
		}
	}
	return units
}

// runUnitsConcurrently analyzes independent function units in parallel.
// Pass.Report and the directive cache are not goroutine-safe, so the
// driver wraps Report with a mutex and pre-warms the directive cache
// for every file before fanning out.
func (p *Pass) runUnitsConcurrently(units []funcUnit, analyze func(funcUnit)) {
	for _, u := range units {
		// Warm the lazily built per-file directive index while still
		// single-threaded.
		p.Allowed(u.file, u.body.Pos(), "")
	}
	var mu sync.Mutex
	orig := p.Report
	p.Report = func(d Diagnostic) {
		mu.Lock()
		defer mu.Unlock()
		orig(d)
	}
	defer func() { p.Report = orig }()

	workers := runtime.GOMAXPROCS(0)
	if workers > len(units) {
		workers = len(units)
	}
	if workers < 1 {
		workers = 1
	}
	ch := make(chan funcUnit)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := range ch {
				analyze(u)
			}
		}()
	}
	for _, u := range units {
		ch <- u
	}
	close(ch)
	wg.Wait()
}

// scanShallow walks the subtree rooted at n but does NOT descend into
// function literals: a closure body belongs to its own unit, so its
// events must not leak into the enclosing function's flow.
func scanShallow(root ast.Node, fn func(ast.Node) bool) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found || n == nil {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok && n != root {
			return false
		}
		if fn(n) {
			found = true
			return false
		}
		return true
	})
	return found
}

// shallowCalls visits every call expression in the subtree without
// entering function literals.
func shallowCalls(root ast.Node, fn func(*ast.CallExpr)) {
	scanShallow(root, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			fn(call)
		}
		return false
	})
}

// constVal resolves e to its compile-time constant value and the name
// of its (named) type, if any.
func (p *Pass) constVal(e ast.Expr) (constant.Value, string, bool) {
	tv, ok := p.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return nil, "", false
	}
	tname := ""
	if n := namedType(tv.Type); n != nil {
		tname = n.Obj().Name()
	}
	return tv.Value, tname, true
}

// intConstOfType resolves e to an integer constant of the named type.
func (p *Pass) intConstOfType(e ast.Expr, typeName string) (int64, bool) {
	v, tn, ok := p.constVal(e)
	if !ok || tn != typeName {
		return 0, false
	}
	i, ok := constant.Int64Val(constant.ToInt(v))
	return i, ok
}

// isZeroConst reports whether e is the constant 0.
func (p *Pass) isZeroConst(e ast.Expr) bool {
	v, _, ok := p.constVal(e)
	if !ok {
		return false
	}
	i, ok := constant.Int64Val(constant.ToInt(v))
	return ok && i == 0
}

// selPath renders a selector chain x.y.z as "x.y.z"; returns "" for
// anything more complex than nested selectors over an identifier.
func selPath(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := selPath(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	}
	return ""
}

// baseIdent returns the root identifier of a selector/index/unary
// chain (`&q.lane.Tail` → q), or nil.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// lastSelector returns the final selector name of a chain (`q.lane.Tail`
// → "Tail"), or the identifier name itself.
func lastSelector(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return x.Sel.Name
	case *ast.UnaryExpr:
		return lastSelector(x.X)
	case *ast.ParenExpr:
		return lastSelector(x.X)
	}
	return ""
}

// isLockWordCall reports whether the subtree contains a call to one of
// the lock-word constructors (lockWord, LockWord, lockWordFor,
// LockWordFor) — the signature of a CAS that installs lock ownership.
func isLockWordCall(e ast.Expr) bool {
	return scanShallow(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return false
		}
		switch calleeName(call) {
		case "lockWord", "LockWord", "lockWordFor", "LockWordFor":
			return true
		}
		return false
	})
}

// isNilIdent reports whether e is the predeclared nil.
func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// returnsCrash reports whether a return statement's expressions contain
// a call named crash — the simulated node-death exits that deliberately
// leave protocol state for recovery to repair.
func returnsCrash(ret *ast.ReturnStmt) bool {
	if ret == nil {
		return false
	}
	for _, e := range ret.Results {
		if scanShallow(e, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			return ok && calleeName(call) == "crash"
		}) {
			return true
		}
	}
	return false
}

// inScopeSegs reports whether the package's final path segment is one
// of the given names. Every flow pass scopes this way so its
// analysistest fixture package (testdata/src/<passname>) is covered
// alongside the real packages.
func inScopeSegs(path string, segs ...string) bool {
	s := lastSeg(path)
	for _, want := range segs {
		if s == want {
			return true
		}
	}
	return false
}
