package analyzers

import (
	"go/ast"
	"go/types"
)

// Determinism enforces the virtual-time contract: inside the packages
// that run on rdma.VClock, a fixed seed must produce a bit-identical
// run, so nothing may consult the wall clock, the global math/rand
// PRNG, or Go's randomised map iteration order in a way that changes
// observable output.
//
// Escapes: //pandora:wallclock on (or directly above) the line permits
// a clock/PRNG call that is genuinely host-side (real-time pacing of a
// live workload, operator-facing wall-time metrics); //pandora:unordered
// permits a map iteration whose effects are order-independent.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock, global math/rand, and order-dependent map iteration in virtual-time packages",
	Run:  runDeterminism,
}

// wallClockFuncs are the time package entry points that read or wait on
// the host clock. time.Duration arithmetic and constants stay legal.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

// seededRandFuncs are the math/rand constructors that produce an
// explicitly seeded generator — the only sanctioned way to get
// randomness in a virtual-time package.
var seededRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runDeterminism(pass *Pass) error {
	if !IsVirtualTimePkg(pass.PkgPath) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				pkg, fn := pass.pkgFuncCall(n)
				switch {
				case pkg == "time" && wallClockFuncs[fn]:
					if !pass.Allowed(file, n.Pos(), DirWallclock) {
						pass.Reportf(n.Pos(), "determinism",
							"time.%s reads the wall clock in virtual-time package %s; use the rdma.VClock, or annotate //pandora:wallclock with a justification", fn, pass.Pkg.Name())
					}
				case (pkg == "math/rand" || pkg == "math/rand/v2") && !seededRandFuncs[fn]:
					if !pass.Allowed(file, n.Pos(), DirWallclock) {
						pass.Reportf(n.Pos(), "determinism",
							"rand.%s uses the global PRNG, nondeterministic under concurrency; draw from a seeded *rand.Rand owned by the run", fn)
					}
				}
			case *ast.RangeStmt:
				pass.checkMapRange(file, n)
			}
			return true
		})
	}
	return nil
}

// checkMapRange flags `for ... := range m` over a map whose body has
// order-visible effects: appending to a variable declared outside the
// loop, sending on a channel, or posting fabric verbs. The canonical
// fix — collecting the keys and sorting before use — is recognised and
// exempt: a body that only appends the key variable is allowed when the
// same function later calls a sort function.
func (p *Pass) checkMapRange(file *ast.File, rng *ast.RangeStmt) {
	tv, ok := p.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := types.Unalias(tv.Type).Underlying().(*types.Map); !isMap {
		return
	}
	if p.Allowed(file, rng.Pos(), DirUnordered) {
		return
	}
	keyName := ""
	if id, ok := rng.Key.(*ast.Ident); ok {
		keyName = id.Name
	}
	sortedLater := p.sortCallAfter(file, rng)
	var effects []ast.Node
	keyCollectOnly := true
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			effects = append(effects, n)
			keyCollectOnly = false
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || calleeName(call) != "append" {
					continue
				}
				if id, ok := n.Lhs[i].(*ast.Ident); ok && p.declaredOutside(id, rng) {
					effects = append(effects, n)
					// ids = append(ids, key): pure key collection.
					if !(len(call.Args) == 2 && isIdentNamed(call.Args[1], keyName)) {
						keyCollectOnly = false
					}
				}
			}
		case *ast.CallExpr:
			if isNamed(p.recvType(n), "Endpoint") {
				effects = append(effects, n)
				keyCollectOnly = false
			}
		}
		return true
	})
	if len(effects) == 0 {
		return
	}
	if keyCollectOnly && sortedLater {
		return
	}
	p.Reportf(rng.Pos(), "determinism",
		"iteration over map is randomly ordered and the body has order-visible effects; sort the keys first, or annotate //pandora:unordered with a justification")
}

// declaredOutside reports whether id resolves to an object declared
// outside the given node's span (i.e. the append target outlives the
// loop body).
func (p *Pass) declaredOutside(id *ast.Ident, within ast.Node) bool {
	obj := p.TypesInfo.Uses[id]
	if obj == nil {
		obj = p.TypesInfo.Defs[id]
	}
	if obj == nil {
		return false
	}
	return obj.Pos() < within.Pos() || obj.Pos() > within.End()
}

// sortCallAfter reports whether a sort/slices ordering call appears in
// the file after the given node — the tail half of the
// collect-keys-then-sort idiom.
func (p *Pass) sortCallAfter(file *ast.File, after ast.Node) bool {
	found := false
	ast.Inspect(file, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < after.End() {
			return true
		}
		if pkg, fn := p.pkgFuncCall(call); pkg == "sort" || (pkg == "slices" && (fn == "Sort" || fn == "SortFunc" || fn == "SortStableFunc")) {
			found = true
			return false
		}
		return true
	})
	return found
}

func isIdentNamed(e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	return ok && name != "" && id.Name == name
}
