package analyzers

// Forward dataflow over the CFG: a worklist solver parameterised by a
// FlowProblem (lattice + transfer functions). Facts are opaque `any`
// values owned by the pass; nil is the bottom element meaning
// "unreached". The solver:
//
//   - seeds the entry block with Entry(),
//   - applies Transfer to each node of a block in order,
//   - applies Branch on each outgoing edge of a condition block so
//     passes can refine facts from the branch outcome (the swapped /
//     stole flag idiom),
//   - joins facts at merge points with Join,
//   - iterates to a fixpoint, with a hard cap as a safety net against
//     a pass whose lattice fails to converge.
//
// After solving, Walk replays one block from its In fact so passes can
// report precisely at the node where a fact becomes a violation.

import "go/ast"

// FlowProblem defines one forward dataflow analysis. Facts must be
// treated as immutable: Transfer/Branch/Join return new values (or the
// input unchanged) rather than mutating in place, since a fact may be
// shared between blocks.
type FlowProblem interface {
	// Entry is the fact at function entry.
	Entry() any
	// Transfer applies the effect of one block node. fact is non-nil.
	Transfer(n ast.Node, fact any) any
	// Branch refines the fact leaving a condition block along the
	// taken (true) or not-taken edge. cond is the leaf condition (the
	// CFG splits short-circuit operators, so it is never && or ||).
	Branch(cond ast.Expr, taken bool, fact any) any
	// Join combines facts arriving at a merge point. Neither input is
	// nil.
	Join(a, b any) any
	// Equal reports whether two facts are equal (fixpoint detection).
	Equal(a, b any) bool
}

// FlowResult holds the solved per-block facts. In[b] is the fact on
// entry to b; Out facts are edge-specific and recomputed on demand via
// Walk, so only In is stored.
type FlowResult struct {
	g  *CFG
	p  FlowProblem
	In map[*Block]any
}

// maxFlowIters caps worklist iterations per function. Real lattices in
// this package have height ≤ 4 per variable; the cap only exists to
// turn a non-converging pass bug into a loud failure, not an infinite
// loop.
const maxFlowIters = 10000

// Solve runs the forward dataflow to fixpoint.
func Solve(g *CFG, p FlowProblem) *FlowResult {
	in := make(map[*Block]any, len(g.Blocks))
	in[g.Entry] = p.Entry()

	// Worklist of blocks whose In changed.
	work := []*Block{g.Entry}
	queued := map[*Block]bool{g.Entry: true}
	iters := 0

	propagate := func(to *Block, fact any) {
		if fact == nil {
			return
		}
		old, ok := in[to]
		var merged any
		if !ok || old == nil {
			merged = fact
		} else {
			merged = p.Join(old, fact)
		}
		if ok && old != nil && p.Equal(old, merged) {
			return
		}
		in[to] = merged
		if !queued[to] {
			queued[to] = true
			work = append(work, to)
		}
	}

	for len(work) > 0 {
		iters++
		if iters > maxFlowIters {
			panic("analyzers: dataflow failed to converge (lattice bug)")
		}
		b := work[0]
		work = work[1:]
		queued[b] = false

		fact := in[b]
		if fact == nil {
			continue
		}
		for _, n := range b.Nodes {
			fact = p.Transfer(n, fact)
			if fact == nil {
				break
			}
		}
		if fact == nil || b.Ret != nil {
			continue
		}
		if b.Cond != nil {
			propagate(b.TSucc, p.Branch(b.Cond, true, fact))
			propagate(b.FSucc, p.Branch(b.Cond, false, fact))
		} else {
			for _, s := range b.Succs {
				propagate(s, fact)
			}
		}
	}
	return &FlowResult{g: g, p: p, In: in}
}

// ExitFacts visits every reachable function exit with the fact in
// force at that exit: for explicit returns the fact after the block's
// nodes up to and including the return; for the implicit fall-off exit
// the fact after the last block. A nil fact (block statically
// unreached by the analysis) is skipped.
func (r *FlowResult) ExitFacts(fn func(b *Block, ret *ast.ReturnStmt, fact any)) {
	r.g.Exits(func(b *Block, ret *ast.ReturnStmt) {
		fact := r.In[b]
		if fact == nil {
			return
		}
		for _, n := range b.Nodes {
			fact = r.p.Transfer(n, fact)
			if fact == nil {
				return
			}
		}
		fn(b, ret, fact)
	})
}

// Walk replays block b from its solved In fact, invoking visit with
// the fact in force *before* each node. Returns the fact after the
// last node (nil if the block was unreached or a transfer dropped to
// bottom).
func (r *FlowResult) Walk(b *Block, visit func(n ast.Node, before any)) any {
	fact := r.In[b]
	if fact == nil {
		return nil
	}
	for _, n := range b.Nodes {
		if visit != nil {
			visit(n, fact)
		}
		fact = r.p.Transfer(n, fact)
		if fact == nil {
			return nil
		}
	}
	return fact
}
