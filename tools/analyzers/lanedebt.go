package analyzers

import (
	"go/ast"
	"go/token"
)

// Lanedebt enforces the hot-lock ticket-lane debt discipline of
// DESIGN.md §14 (PR 9): every FAA on a lane tail takes a ticket and
// owes the lane exactly one head advance. The debt must, on every path
// out of the function, be either
//
//   - settled (a head-advance FAA, directly or via a settler helper
//     like payLaneDebt),
//   - covered by a gated defer (the stageLockedWrite idiom: a deferred
//     closure that pays unless the acquisition transferred the debt),
//   - published to the caller (`.joined = true` on a pointer parameter,
//     the queueJoin handoff),
//   - transferred to the write entry (`.transferred = true`), in which
//     case SOME function in the package must advance a `.queueHead`
//     (unlockAll's release FAA), or
//   - abandoned deliberately on a crash exit (`return tx.crash()`),
//     the one case recovery is specified to repair.
//
// Zeroing the queue state (`q = queueState{}`) while the debt is
// outstanding is a leak even under a gated defer — the defer reads
// q.joined and will pay nothing. This is exactly the PR 9 leak shape:
// deleting the settle before the zeroing wedges the lane.
//
// Same-package helpers get one-level call summaries: a *joiner*
// publishes `.joined = true` into a parameter after either FAAing a
// `.Tail` itself or absorbing a speculative ticket FAA that rode
// another doorbell (the queueAbsorb shape of DESIGN.md §16, recognised
// by reading the op's `.Old` result); a *settler* FAAs a `.Head`.
// Guarded head CASes (queueWait's and recovery's
// `CAS(head, head+1)` repairs) are repairs of OTHER participants' debt
// and deliberately do not settle the analyzed function's own ticket.
//
// Escape hatch: //pandora:lanedebt on or above the reported line.
var Lanedebt = &Analyzer{
	Name: "lanedebt",
	Doc:  "ticket-lane FAA debt must be settled, transferred, or defer-covered on every exit path",
	Run:  runLanedebt,
}

const (
	laneNone      = iota // no outstanding debt
	laneDebt             // ticket taken, nothing covers it
	laneDebtDefer        // ticket taken, gated defer settles at exit
	laneXfer             // debt transferred to the write entry
)

// laneFact is the per-variable lattice value.
type laneFact struct {
	state   int
	errName string // error var guarding the join; its != nil edge clears
}

// laneFacts maps queue-state variable names to lattice values. Treated
// as immutable; transfers copy on write.
type laneFacts map[string]laneFact

func (f laneFacts) with(name string, v laneFact) laneFacts {
	out := make(laneFacts, len(f)+1)
	for k, val := range f {
		out[k] = val
	}
	out[name] = v
	return out
}

func runLanedebt(pass *Pass) error {
	if !inScopeSegs(pass.PkgPath, "core", "recovery", "lanedebt") {
		return nil
	}
	sum := pass.laneSummaries()
	units := pass.funcUnits(true)
	pass.runUnitsConcurrently(units, func(u funcUnit) {
		pass.checkLaneUnit(u, sum)
	})
	return nil
}

// laneSummary is the one-level call-summary table for the package.
type laneSummary struct {
	joiners map[string]int // function name → flat index of the published-into param
	settler map[string]bool
	// headFAA records whether any function in the package advances a
	// `.queueHead` — the package-level release of transferred debt.
	headFAA bool
}

// laneSummaries classifies the package's declared functions.
func (p *Pass) laneSummaries() *laneSummary {
	sum := &laneSummary{joiners: make(map[string]int), settler: make(map[string]bool)}
	for _, file := range p.Files {
		if p.isTestFile(file) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			tailFAA, headFAA, queueHeadFAA, readsOld := false, false, false, false
			published := ""
			scanShallow(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					name := calleeName(n)
					if (name == "FAA" || name == "AddFAA") && len(n.Args) >= 1 {
						switch lastSelector(n.Args[0]) {
						case "Tail":
							tailFAA = true
						case "Head":
							headFAA = true
						case "queueHead":
							queueHeadFAA = true
						}
					}
				case *ast.SelectorExpr:
					// Reading an op's .Old is the absorb signature: the FAA
					// itself rode an earlier doorbell (queueSpec armed it),
					// and this helper converts its result into queue state.
					if n.Sel.Name == "Old" {
						readsOld = true
					}
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						if sel, ok := lhs.(*ast.SelectorExpr); ok && sel.Sel.Name == "joined" {
							if id := baseIdent(sel.X); id != nil {
								published = id.Name
							}
						}
					}
				}
				return false
			})
			if queueHeadFAA {
				sum.headFAA = true
			}
			if headFAA && !tailFAA {
				sum.settler[fd.Name.Name] = true
			}
			if (tailFAA || readsOld) && published != "" {
				flat := 0
				for _, field := range fd.Type.Params.List {
					if len(field.Names) == 0 {
						flat++
						continue
					}
					for _, pn := range field.Names {
						if pn.Name == published {
							sum.joiners[fd.Name.Name] = flat
						}
						flat++
					}
				}
			}
		}
	}
	return sum
}

// laneProblem is the FlowProblem for one function unit.
type laneProblem struct {
	pass *Pass
	sum  *laneSummary
	unit funcUnit
	// covered names queue-state variables a gated defer settles. Defers
	// run at every subsequent exit, and the real idiom registers the
	// defer before the join, so collecting them once per unit (rather
	// than flow-positionally) is exact enough and far simpler.
	covered map[string]bool
	// reported dedups diagnostics fired from Transfer, which the
	// worklist re-runs many times per block.
	reported map[token.Pos]bool
}

func (lp *laneProblem) reportOnce(pos token.Pos, format string, args ...any) {
	if lp.reported[pos] || lp.pass.Allowed(lp.unit.file, pos, DirLanedebt) {
		return
	}
	lp.reported[pos] = true
	lp.pass.Reportf(pos, "lanedebt", format, args...)
}

func (lp *laneProblem) Entry() any { return laneFacts{} }

func (lp *laneProblem) Equal(a, b any) bool {
	fa, fb := a.(laneFacts), b.(laneFacts)
	if len(fa) != len(fb) {
		return false
	}
	for k, v := range fa {
		if fb[k] != v {
			return false
		}
	}
	return true
}

func laneRank(s int) int {
	switch s {
	case laneDebt:
		return 3
	case laneDebtDefer:
		return 2
	case laneXfer:
		return 1
	}
	return 0
}

func (lp *laneProblem) Join(a, b any) any {
	fa, fb := a.(laneFacts), b.(laneFacts)
	out := make(laneFacts, len(fa)+len(fb))
	for k, v := range fa {
		out[k] = v
	}
	for k, v := range fb {
		if prev, ok := out[k]; !ok || laneRank(v.state) > laneRank(prev.state) {
			out[k] = v
		}
	}
	return out
}

func (lp *laneProblem) Transfer(n ast.Node, fact any) any {
	f := fact.(laneFacts)
	switch n := n.(type) {
	case *ast.AssignStmt:
		f = lp.transferAssign(n, f)
	case *ast.DeferStmt:
		// Defer bodies are separate units; a direct settler defer
		// (defer tx.payLaneDebt(q.lane)) covers q from here on. Gated
		// closures were collected up front in checkLaneUnit.
		if name, ok := lp.settlerCall(n.Call); ok {
			lp.covered[name] = true
			if v, ok := f[name]; ok && v.state == laneDebt {
				f = f.with(name, laneFact{state: laneDebtDefer})
			}
		}
	default:
		f = lp.applyCalls(n, f)
	}
	return f
}

// transferAssign handles joins (FAA .Tail / joiner call), publishes
// (.joined = true), transfers (.transferred = true), zeroing, and any
// settler call on the RHS.
func (lp *laneProblem) transferAssign(as *ast.AssignStmt, f laneFacts) laneFacts {
	// `<q>.joined = true` — primitive joiner publishing its ticket to
	// the caller's queue state: the debt leaves this frame.
	// `<q>.transferred = true` — debt rides the write entry; legal only
	// if the package releases queue heads somewhere.
	for i, lhs := range as.Lhs {
		sel, ok := lhs.(*ast.SelectorExpr)
		if !ok || i >= len(as.Rhs) {
			continue
		}
		rhsTrue := false
		if id, ok := as.Rhs[i].(*ast.Ident); ok && id.Name == "true" {
			rhsTrue = true
		}
		id := baseIdent(sel.X)
		if id == nil || !rhsTrue {
			continue
		}
		switch sel.Sel.Name {
		case "joined":
			if v, ok := f[id.Name]; ok && (v.state == laneDebt || v.state == laneDebtDefer) {
				f = f.with(id.Name, laneFact{state: laneNone})
			}
		case "transferred":
			if v, ok := f[id.Name]; ok && (v.state == laneDebt || v.state == laneDebtDefer) {
				if !lp.sum.headFAA {
					lp.reportOnce(as.Pos(),
						"lane debt transferred to the write entry, but no function in this package advances a .queueHead: the transferred ticket is never settled (PR 9 leak class)")
				}
				f = f.with(id.Name, laneFact{state: laneXfer})
			}
		}
	}

	// Zeroing: `q = queueState{}` while the ticket is outstanding. The
	// gated defer reads q.joined, so zeroing erases the debt record —
	// a leak even when a defer covers the normal exits.
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || i >= len(as.Rhs) {
			continue
		}
		cl, ok := as.Rhs[i].(*ast.CompositeLit)
		if !ok || len(cl.Elts) != 0 {
			continue
		}
		if v, ok := f[id.Name]; ok {
			if v.state == laneDebt || v.state == laneDebtDefer {
				lp.reportOnce(as.Pos(),
					"queue state %s is zeroed while its ticket-lane debt is outstanding; the gated defer reads %s.joined and will pay nothing — settle the lane first (PR 9 leak class)",
					id.Name, id.Name)
			}
			f = f.with(id.Name, laneFact{state: laneNone})
		}
	}

	// Joins and settles carried by the RHS expressions.
	errName := ""
	if len(as.Lhs) > 0 {
		if id, ok := as.Lhs[len(as.Lhs)-1].(*ast.Ident); ok && id.Name != "_" {
			errName = id.Name
		}
	}
	for _, rhs := range as.Rhs {
		rhs := rhs
		shallowCalls(rhs, func(call *ast.CallExpr) {
			if name, ok := lp.settlerCall(call); ok {
				if _, tracked := f[name]; tracked {
					f = f.with(name, laneFact{state: laneNone})
				}
			}
			if name, ok := lp.joinEvent(call); ok {
				st := laneDebt
				if lp.covered[name] {
					st = laneDebtDefer
				}
				f = f.with(name, laneFact{state: st, errName: errName})
			}
		})
	}
	return f
}

// applyCalls handles settler and joiner calls appearing in any other
// statement (expression statements, return expressions).
func (lp *laneProblem) applyCalls(n ast.Node, f laneFacts) laneFacts {
	shallowCalls(n, func(call *ast.CallExpr) {
		if name, ok := lp.settlerCall(call); ok {
			if _, tracked := f[name]; tracked {
				f = f.with(name, laneFact{state: laneNone})
			}
		}
		if name, ok := lp.joinEvent(call); ok {
			st := laneDebt
			if lp.covered[name] {
				st = laneDebtDefer
			}
			f = f.with(name, laneFact{state: st})
		}
	})
	return f
}

// joinEvent reports whether call takes a ticket, returning the tracked
// queue-state variable name: a raw FAA/AddFAA on a `.Tail` (tracking
// the address's base variable — AddFAA is the batch-armed speculative
// ticket of the fused lock doorbell) or a call to a summarized joiner
// helper (tracking the &q argument's base).
func (lp *laneProblem) joinEvent(call *ast.CallExpr) (string, bool) {
	name := calleeName(call)
	if (name == "FAA" || name == "AddFAA") && len(call.Args) >= 1 && lastSelector(call.Args[0]) == "Tail" {
		if id := baseIdent(call.Args[0]); id != nil {
			return id.Name, true
		}
		return "", false
	}
	if idx, ok := lp.sum.joiners[name]; ok && idx < len(call.Args) {
		if id := baseIdent(call.Args[idx]); id != nil {
			return id.Name, true
		}
	}
	return "", false
}

// settlerCall reports whether call settles a lane, returning the
// queue-state variable it settles: a raw FAA/AddFAA on a `.Head`, or a
// call to a summarized settler with a lane argument (payLaneDebt(q.lane)
// → q).
func (lp *laneProblem) settlerCall(call *ast.CallExpr) (string, bool) {
	name := calleeName(call)
	if name == "FAA" || name == "AddFAA" {
		if len(call.Args) >= 1 && lastSelector(call.Args[0]) == "Head" {
			if id := baseIdent(call.Args[0]); id != nil {
				return id.Name, true
			}
		}
		return "", false
	}
	if lp.sum.settler[name] && len(call.Args) >= 1 {
		if id := baseIdent(call.Args[0]); id != nil {
			return id.Name, true
		}
	}
	return "", false
}

func (lp *laneProblem) Branch(cond ast.Expr, taken bool, fact any) any {
	f := fact.(laneFacts)
	// `<err> != nil` true edge: the join verb failed, no ticket taken.
	if be, ok := cond.(*ast.BinaryExpr); ok && be.Op.String() == "!=" && taken {
		if id, ok := be.X.(*ast.Ident); ok && isNilIdent(be.Y) {
			for name, v := range f {
				if v.errName != "" && v.errName == id.Name && (v.state == laneDebt || v.state == laneDebtDefer) {
					f = f.with(name, laneFact{state: laneNone})
				}
			}
		}
	}
	// `<q>.joined` false edge: no ticket outstanding for q.
	if sel, ok := cond.(*ast.SelectorExpr); ok && sel.Sel.Name == "joined" && !taken {
		if id := baseIdent(sel.X); id != nil {
			if v, ok := f[id.Name]; ok && (v.state == laneDebt || v.state == laneDebtDefer) {
				f = f.with(id.Name, laneFact{state: laneNone})
			}
		}
	}
	return f
}

func (p *Pass) checkLaneUnit(u funcUnit, sum *laneSummary) {
	lp := &laneProblem{pass: p, sum: sum, unit: u,
		covered: make(map[string]bool), reported: make(map[token.Pos]bool)}

	// Collect gated-defer coverage up front: a defer whose closure calls
	// a settler on `<q>.lane` covers q's exits from registration on (and
	// the sanctioned idiom registers it before the join).
	scanShallow(u.body, func(n ast.Node) bool {
		ds, ok := n.(*ast.DeferStmt)
		if !ok {
			return false
		}
		fl, ok := ds.Call.Fun.(*ast.FuncLit)
		if !ok {
			return false
		}
		ast.Inspect(fl.Body, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				if name, ok := lp.settlerCall(call); ok {
					lp.covered[name] = true
				}
			}
			return true
		})
		return false
	})

	g := BuildCFG(u.body)
	res := Solve(g, lp)
	res.ExitFacts(func(b *Block, ret *ast.ReturnStmt, fact any) {
		if returnsCrash(ret) {
			return
		}
		f := fact.(laneFacts)
		for name, v := range f {
			if v.state != laneDebt {
				continue
			}
			pos := u.body.Rbrace
			if ret != nil {
				pos = ret.Pos()
			}
			lp.reportOnce(pos,
				"ticket-lane debt of %s is unsettled on this exit path: every tail FAA owes one head advance — settle it, transfer it to the write entry, or cover it with a gated defer (PR 9 leak class)", name)
		}
	})
}
