package analyzers

import (
	"go/ast"
)

// Batchescape protects the zero-alloc contract of the pooled
// rdma.OpBatch (PR 2): every *Op handed out by Add/AddRead/... and
// every scratch slice from Bytes is backed by the batch's arena and is
// recycled at Put. A pointer that outlives the batch corrupts a later,
// unrelated transaction's ops.
//
// For every function that *owns* a batch (calls GetBatch locally — the
// only pattern under which Put happens in the same frame), the pass
// flags batch-derived values that escape the frame:
//
//   - stored into a struct field (x.f = op),
//   - returned from the function,
//   - captured by a goroutine's function literal.
//
// Values derived from a batch received as a parameter are exempt: the
// caller owns the batch lifetime there, and returning a freshly added
// *Op to the owner is the normal builder-helper shape.
var Batchescape = &Analyzer{
	Name: "batchescape",
	Doc:  "pooled OpBatch-derived pointers must not outlive the batch",
	Run:  runBatchescape,
}

// batchDeriveMethods are the OpBatch methods returning arena-backed
// values.
var batchDeriveMethods = map[string]bool{
	"Add": true, "AddRead": true, "AddWrite": true, "AddCAS": true,
	"AddFAA": true, "AddFlush": true, "Op": true, "Ops": true, "Bytes": true,
}

func runBatchescape(pass *Pass) error {
	for _, file := range pass.Files {
		// Tests poke the arena/recycling machinery on purpose.
		if pass.isTestFile(file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			fn, body := funcOf(n)
			if body == nil {
				return true
			}
			pass.checkBatchFunc(fn, body)
			return true
		})
	}
	return nil
}

// funcOf returns the node and body if n declares a function.
func funcOf(n ast.Node) (ast.Node, *ast.BlockStmt) {
	switch n := n.(type) {
	case *ast.FuncDecl:
		return n, n.Body
	}
	return nil, nil
}

func (p *Pass) checkBatchFunc(fn ast.Node, body *ast.BlockStmt) {
	// Owned batches: locals assigned from GetBatch().
	owned := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) {
				break
			}
			call, ok := rhs.(*ast.CallExpr)
			if !ok || calleeName(call) != "GetBatch" {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				owned[id.Name] = true
			}
		}
		return true
	})
	if len(owned) == 0 {
		return
	}

	// derived: locals holding arena-backed values from an owned batch.
	derived := make(map[string]bool)
	isDeriveCall := func(e ast.Expr) bool {
		call, ok := e.(*ast.CallExpr)
		if !ok {
			return false
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !batchDeriveMethods[sel.Sel.Name] {
			return false
		}
		if !isNamed(p.recvType(call), "OpBatch") {
			return false
		}
		id, ok := sel.X.(*ast.Ident)
		return ok && owned[id.Name]
	}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) || !isDeriveCall(rhs) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				derived[id.Name] = true
			}
		}
		return true
	})

	// isDerivedExpr reports whether e itself aliases batch arena memory:
	// a derived local, a derive call, or a selector/index/slice rooted
	// at one (op.Buf, ops[0], buf[2:4]). Values computed FROM derived
	// data (len(op.Buf)) do not alias and are fine.
	var isDerivedExpr func(e ast.Expr) bool
	isDerivedExpr = func(e ast.Expr) bool {
		switch e := e.(type) {
		case *ast.ParenExpr:
			return isDerivedExpr(e.X)
		case *ast.Ident:
			return derived[e.Name]
		case *ast.SelectorExpr:
			return isDerivedExpr(e.X)
		case *ast.IndexExpr:
			return isDerivedExpr(e.X)
		case *ast.SliceExpr:
			return isDerivedExpr(e.X)
		case *ast.UnaryExpr:
			return isDerivedExpr(e.X)
		case *ast.CallExpr:
			return isDeriveCall(e)
		}
		return false
	}
	// lhsBaseLocalToBatch reports whether a field-store target is itself
	// batch-scoped (op.Buf = b.Bytes(n) keeps everything in the arena).
	lhsBaseLocalToBatch := func(lhs *ast.SelectorExpr) bool {
		base := lhs.X
		for {
			switch b := base.(type) {
			case *ast.SelectorExpr:
				base = b.X
			case *ast.IndexExpr:
				base = b.X
			default:
				if id, ok := base.(*ast.Ident); ok {
					return derived[id.Name] || owned[id.Name]
				}
				return false
			}
		}
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				sel, ok := lhs.(*ast.SelectorExpr)
				if !ok || lhsBaseLocalToBatch(sel) {
					continue
				}
				if i < len(n.Rhs) && isDerivedExpr(n.Rhs[i]) {
					p.Reportf(n.Pos(), "batchescape",
						"value derived from a pooled OpBatch is stored to a field; it is recycled at Put and will be overwritten by an unrelated batch (allocate it plainly instead)")
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if isDerivedExpr(res) {
					p.Reportf(n.Pos(), "batchescape",
						"value derived from a pooled OpBatch is returned; the batch is Put in this function, so the caller would see recycled memory")
				}
			}
		case *ast.GoStmt:
			if containsNode(n.Call, func(m ast.Node) bool {
				if e, ok := m.(ast.Expr); ok && isDeriveCall(e) {
					return true
				}
				id, ok := m.(*ast.Ident)
				return ok && derived[id.Name]
			}) {
				p.Reportf(n.Pos(), "batchescape",
					"value derived from a pooled OpBatch is captured by a goroutine; the goroutine can outlive Put and race the pool")
			}
		}
		return true
	})
}
