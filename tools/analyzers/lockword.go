package analyzers

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// Lockword gives the PILL lock-word encoding a single owner. The 8-byte
// lock word (locked flag in bit 63, 16-bit coordinator id in bits
// 47..32, transaction tag in bits 31..0) is decoded independently by
// coordinators and by recovery, so the bit layout must exist in exactly
// one place: internal/kvlayout. Outside it, the pass flags
//
//   - bit operations whose constant operand is the locked flag
//     (1<<63) applied to a uint64 — hand-rolled IsLocked/LockWord;
//   - shifts by 32 or 48 in an expression that converts to or from the
//     CoordID type — hand-rolled LockOwner/LockWord.
//
// The hot-lock ticket words (FAA lane tail/head, 48-bit sequence, top
// 16 bits reserved) carry the same single-owner rule: bit operations
// whose constant operand is the ticket-sequence mask ((1<<48)-1) on a
// uint64 are legal only in internal/kvlayout (the layout owner) and
// internal/hotlock (the queue policy layer) — everything else must go
// through kvlayout.TicketSeq.
//
// Anything flagged should call kvlayout.LockWord / IsLocked /
// LockOwner / LockTag / TicketSeq instead.
var Lockword = &Analyzer{
	Name: "lockword",
	Doc:  "flag raw lock-word bit manipulation outside internal/kvlayout",
	Run:  runLockword,
}

func runLockword(pass *Pass) error {
	if IsKVLayoutPkg(pass.PkgPath) {
		return nil
	}
	// The ticket-word rule has one extra legal home: the hotlock policy
	// package. The PILL lock-word rules still apply there.
	ticketExempt := IsHotlockPkg(pass.PkgPath)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				switch n.Op {
				case token.AND, token.OR, token.XOR, token.AND_NOT, token.SHL, token.SHR:
				default:
					return true
				}
				if pass.hasLockedFlagConst(n) && pass.isUint64Context(n) {
					pass.Reportf(n.Pos(), "lockword",
						"raw bit operation with the lock-word locked flag (1<<63); the lock-word layout is owned by internal/kvlayout (use LockWord/IsLocked/LockOwner/LockTag)")
					return false
				}
				if !ticketExempt && pass.hasTicketMaskConst(n) && pass.isUint64Context(n) {
					pass.Reportf(n.Pos(), "lockword",
						"raw bit operation with the ticket-sequence mask ((1<<48)-1); the ticket-word layout is owned by internal/kvlayout (use TicketSeq) and queue policy by internal/hotlock")
					return false
				}
				// Packing: uint64(owner)<<32 — a shift whose operand
				// involves a CoordID-typed expression.
				if (n.Op == token.SHL || n.Op == token.SHR) && isShiftBy(pass, n, 32, 48) && containsCoordID(pass, n.X) {
					pass.Reportf(n.Pos(), "lockword",
						"raw owner-field shift on a lock word; the CoordID encoding is owned by internal/kvlayout (use LockWord/LockOwner)")
					return false
				}
			case *ast.CallExpr:
				// Unpacking: CoordID(word >> 32) — a conversion to
				// CoordID wrapping an owner-field shift.
				if len(n.Args) != 1 {
					return true
				}
				tv, ok := pass.TypesInfo.Types[n.Fun]
				if !ok || !tv.IsType() || !isNamed(tv.Type, "CoordID") {
					return true
				}
				if containsNode(n.Args[0], func(m ast.Node) bool {
					be, ok := m.(*ast.BinaryExpr)
					return ok && (be.Op == token.SHL || be.Op == token.SHR) && isShiftBy(pass, be, 32, 48)
				}) {
					pass.Reportf(n.Pos(), "lockword",
						"raw owner-field extraction into CoordID; the lock-word layout is owned by internal/kvlayout (use LockOwner)")
					return false
				}
			}
			return true
		})
	}
	return nil
}

// hasLockedFlagConst reports whether either operand of the bit op is
// the constant 1<<63.
func (p *Pass) hasLockedFlagConst(be *ast.BinaryExpr) bool {
	return p.isLockedFlag(be.X) || p.isLockedFlag(be.Y)
}

func (p *Pass) isLockedFlag(e ast.Expr) bool {
	tv, ok := p.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return false
	}
	v, ok := constant.Uint64Val(tv.Value)
	return ok && v == 1<<63
}

// hasTicketMaskConst reports whether either operand of the bit op is
// the constant (1<<48)-1 — the ticket-sequence mask.
func (p *Pass) hasTicketMaskConst(be *ast.BinaryExpr) bool {
	return p.isTicketMask(be.X) || p.isTicketMask(be.Y)
}

func (p *Pass) isTicketMask(e ast.Expr) bool {
	tv, ok := p.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return false
	}
	v, ok := constant.Uint64Val(tv.Value)
	return ok && v == uint64(1)<<48-1
}

// isUint64Context reports whether either side of the expression has a
// uint64-based type (which is what lock words are on the wire). This
// keeps unrelated flag spaces on other widths legal.
func (p *Pass) isUint64Context(be *ast.BinaryExpr) bool {
	for _, e := range []ast.Expr{be.X, be.Y} {
		tv, ok := p.TypesInfo.Types[e]
		if !ok {
			continue
		}
		if basic, ok := types.Unalias(tv.Type).Underlying().(*types.Basic); ok && basic.Kind() == types.Uint64 {
			return true
		}
	}
	return false
}

func containsCoordID(p *Pass, root ast.Node) bool {
	return containsNode(root, func(n ast.Node) bool {
		e, ok := n.(ast.Expr)
		if !ok {
			return false
		}
		tv, ok := p.TypesInfo.Types[e]
		return ok && isNamed(tv.Type, "CoordID")
	})
}

func isShiftBy(p *Pass, be *ast.BinaryExpr, amounts ...uint64) bool {
	tv, ok := p.TypesInfo.Types[be.Y]
	if !ok || tv.Value == nil {
		return false
	}
	v, ok := constant.Uint64Val(tv.Value)
	if !ok {
		return false
	}
	for _, a := range amounts {
		if v == a {
			return true
		}
	}
	return false
}
