package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Journalstate enforces the reconfig journal's state-machine discipline
// (DESIGN.md §13, PR 8) in internal/reconfig: journal writes only
// persist legal transitions of the per-partition state machine
// (pending → copying → cutover → done), in order, and a mutated journal
// image is always persisted before the function gives up control.
//
// Image classification (flow facts):
//
//   - LOCAL: built from an &image{...} literal — initialization; any
//     seed states are legal, and persistence is the caller's business
//     (the Run idiom hands the literal to a step closure).
//
//   - JOURNAL: obtained from freshImage()/readJournal() (or cloned from
//     a journal image) — the persisted protocol state. For these:
//
//     J1: a store `im.states[p] = S` with S a PartitionState constant
//     is legal only when S is the terminal StateDone (idempotent
//     completion), or the store is dominated by a guard on the SAME
//     element that rules out skipping: `im.states[p] < C` with C ≤ S,
//     or `im.states[p] == S-1`. An equality guard on an earlier state
//     (`== StatePending` before a StateCutover store) is the
//     skipped-state bug this pass exists to flag.
//
//     J2: `im.phase = phaseRunning` re-opens a journaled migration —
//     only a fresh LOCAL image may carry phaseRunning.
//
//     J3: once mutated, the image must reach writeJournal(im) on every
//     path out of the function (a dirty image dropped on the floor
//     desynchronizes the journal from the in-memory protocol state).
//
// Escape hatch: //pandora:journalstate on or above the reported line.
var Journalstate = &Analyzer{
	Name: "journalstate",
	Doc:  "reconfig journal writes must persist legal state-machine transitions, in order",
	Run:  runJournalstate,
}

func runJournalstate(pass *Pass) error {
	if !inScopeSegs(pass.PkgPath, "reconfig", "journalstate") {
		return nil
	}
	units := pass.funcUnits(true)
	pass.runUnitsConcurrently(units, func(u funcUnit) {
		pass.checkJournalUnit(u)
	})
	return nil
}

const (
	imgLocal = iota + 1
	imgJournal
)

// guardKind is a constraint on one states[...] element, established by
// a dominating branch.
type guardKind struct {
	op string // "<" or "=="
	c  int64
}

// journalFact is the lattice value: tracked image vars, their
// dirtiness, and per-element guards. Immutable; copied on write.
type journalFact struct {
	images map[string]int       // var name → imgLocal / imgJournal
	dirty  map[string]bool      // var name → mutated since last persist
	errs   map[string]string    // var name → guarding error var
	guards map[string]guardKind // ExprString(states[p]) → constraint
}

func newJournalFact() journalFact {
	return journalFact{
		images: map[string]int{},
		dirty:  map[string]bool{},
		errs:   map[string]string{},
		guards: map[string]guardKind{},
	}
}

func (f journalFact) clone() journalFact {
	out := newJournalFact()
	for k, v := range f.images {
		out.images[k] = v
	}
	for k, v := range f.dirty {
		out.dirty[k] = v
	}
	for k, v := range f.errs {
		out.errs[k] = v
	}
	for k, v := range f.guards {
		out.guards[k] = v
	}
	return out
}

type journalProblem struct {
	pass     *Pass
	unit     funcUnit
	reported map[token.Pos]bool
}

func (jp *journalProblem) reportOnce(pos token.Pos, format string, args ...any) {
	if jp.reported[pos] || jp.pass.Allowed(jp.unit.file, pos, DirJournalstate) {
		return
	}
	jp.reported[pos] = true
	jp.pass.Reportf(pos, "journalstate", format, args...)
}

func (jp *journalProblem) Entry() any { return newJournalFact() }

func (jp *journalProblem) Equal(a, b any) bool {
	fa, fb := a.(journalFact), b.(journalFact)
	if len(fa.images) != len(fb.images) || len(fa.dirty) != len(fb.dirty) ||
		len(fa.errs) != len(fb.errs) || len(fa.guards) != len(fb.guards) {
		return false
	}
	for k, v := range fa.images {
		if fb.images[k] != v {
			return false
		}
	}
	for k, v := range fa.dirty {
		if fb.dirty[k] != v {
			return false
		}
	}
	for k, v := range fa.errs {
		if fb.errs[k] != v {
			return false
		}
	}
	for k, v := range fa.guards {
		if fb.guards[k] != v {
			return false
		}
	}
	return true
}

func (jp *journalProblem) Join(a, b any) any {
	fa, fb := a.(journalFact), b.(journalFact)
	out := newJournalFact()
	for k, v := range fa.images {
		if w, ok := fb.images[k]; ok {
			if w > v { // journal wins conservatively
				v = w
			}
			out.images[k] = v
		} else {
			out.images[k] = v
		}
	}
	for k, v := range fb.images {
		if _, ok := out.images[k]; !ok {
			out.images[k] = v
		}
	}
	for k := range out.images {
		out.dirty[k] = fa.dirty[k] || fb.dirty[k]
		if fa.errs[k] == fb.errs[k] {
			if e := fa.errs[k]; e != "" {
				out.errs[k] = e
			}
		}
	}
	// Guards survive a merge only when both sides agree.
	for k, v := range fa.guards {
		if w, ok := fb.guards[k]; ok && w == v {
			out.guards[k] = v
		}
	}
	return out
}

func (jp *journalProblem) Transfer(n ast.Node, fact any) any {
	f := fact.(journalFact)
	as, isAssign := n.(*ast.AssignStmt)
	if isAssign {
		f = jp.transferAssign(as, f)
	}
	// A writeJournal(im) call anywhere in the node (including return
	// expressions) cleans the image.
	shallowCalls(n, func(call *ast.CallExpr) {
		if calleeName(call) != "writeJournal" || len(call.Args) < 1 {
			return
		}
		id := baseIdent(call.Args[0])
		if id == nil {
			return
		}
		if f.dirty[id.Name] {
			f = f.clone()
			f.dirty[id.Name] = false
		}
	})
	return f
}

func (jp *journalProblem) transferAssign(as *ast.AssignStmt, f journalFact) journalFact {
	// Image bindings.
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		var rhs ast.Expr
		if len(as.Rhs) == len(as.Lhs) {
			rhs = as.Rhs[i]
		} else if len(as.Rhs) == 1 && i == 0 {
			// im, err := freshImage(): the image is result 0.
			rhs = as.Rhs[0]
		}
		if rhs == nil {
			continue
		}
		switch cls := jp.classifyImageExpr(rhs, f); cls {
		case imgLocal, imgJournal:
			f = f.clone()
			f.images[id.Name] = cls
			f.dirty[id.Name] = false
			if cls == imgJournal && len(as.Lhs) == 2 && i == 0 {
				if eid, ok := as.Lhs[1].(*ast.Ident); ok && eid.Name != "_" {
					f.errs[id.Name] = eid.Name
				}
			}
		}
	}

	// Transition stores.
	for i, lhs := range as.Lhs {
		var rhs ast.Expr
		if len(as.Rhs) > i {
			rhs = as.Rhs[i]
		}
		if rhs == nil {
			continue
		}
		switch l := lhs.(type) {
		case *ast.IndexExpr:
			// im.states[p] = S
			sel, ok := l.X.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "states" {
				continue
			}
			id := baseIdent(sel.X)
			if id == nil {
				continue
			}
			cls := f.images[id.Name]
			if cls == 0 {
				continue
			}
			key := types.ExprString(l)
			s, isConst := jp.pass.intConstOfType(rhs, "PartitionState")
			if cls == imgJournal && isConst {
				jp.checkTransition(as.Pos(), key, s, f)
			}
			f = f.clone()
			f.dirty[id.Name] = true
			delete(f.guards, key) // the element changed; the guard is stale
		case *ast.SelectorExpr:
			// im.phase = X
			if l.Sel.Name != "phase" {
				continue
			}
			id := baseIdent(l.X)
			if id == nil || f.images[id.Name] == 0 {
				continue
			}
			if f.images[id.Name] == imgJournal && lastSelector(rhs) == "phaseRunning" {
				jp.reportOnce(as.Pos(),
					"journal image re-opened with phaseRunning: only a freshly built local image may carry the running phase (PR 8 rule)")
			}
			f = f.clone()
			f.dirty[id.Name] = true
		}
	}
	return f
}

// checkTransition applies J1 to a constant store into a journal image.
func (jp *journalProblem) checkTransition(pos token.Pos, key string, s int64, f journalFact) {
	const stateDone = 3 // terminal; pending=0 copying=1 cutover=2
	if s >= stateDone {
		return // idempotent completion is always legal
	}
	g, ok := f.guards[key]
	if !ok {
		jp.reportOnce(pos,
			"unguarded journal state store: persisting state %d without a dominating guard on %s can skip or rewind the migration state machine (PR 8 rule)", s, key)
		return
	}
	switch g.op {
	case "<":
		if g.c > s {
			jp.reportOnce(pos,
				"journal state store of %d is guarded only by %s < %d, which admits rewinding past states (PR 8 rule)", s, key, g.c)
		}
	case "==":
		if g.c != s-1 {
			jp.reportOnce(pos,
				"journal state store skips the state machine: %s == %d does not precede state %d (PR 8 rule)", key, g.c, s)
		}
	}
}

// classifyImageExpr classifies an RHS as building a LOCAL image, a
// JOURNAL image, or neither (0).
func (jp *journalProblem) classifyImageExpr(rhs ast.Expr, f journalFact) int {
	if ue, ok := rhs.(*ast.UnaryExpr); ok {
		rhs = ue.X
	}
	if cl, ok := rhs.(*ast.CompositeLit); ok {
		if isNamed(jp.pass.TypesInfo.Types[cl].Type, "image") {
			return imgLocal
		}
		return 0
	}
	if call, ok := rhs.(*ast.CallExpr); ok {
		switch calleeName(call) {
		case "freshImage", "readJournal":
			return imgJournal
		case "clone":
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if id := baseIdent(sel.X); id != nil {
					if cls := f.images[id.Name]; cls != 0 {
						return cls
					}
				}
			}
			return imgJournal // conservative: an untracked clone source
		}
	}
	return 0
}

func (jp *journalProblem) Branch(cond ast.Expr, taken bool, fact any) any {
	f := fact.(journalFact)
	be, ok := cond.(*ast.BinaryExpr)
	if !ok {
		return f
	}
	// `<err> != nil` true edge after `im, err := freshImage()`: the
	// image is unusable; drop it so error-return paths stay clean.
	if be.Op.String() == "!=" && taken && isNilIdent(be.Y) {
		if id, ok := be.X.(*ast.Ident); ok {
			for name, e := range f.errs {
				if e == id.Name {
					f = f.clone()
					delete(f.images, name)
					delete(f.dirty, name)
					delete(f.errs, name)
				}
			}
		}
		return f
	}
	// Guards over states elements: `im.states[p] < C`, `== C`.
	idx, ok := be.X.(*ast.IndexExpr)
	if !ok {
		return f
	}
	sel, ok := idx.X.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "states" {
		return f
	}
	id := baseIdent(sel.X)
	if id == nil || f.images[id.Name] == 0 {
		return f
	}
	c, isConst := jp.pass.intConstOfType(be.Y, "PartitionState")
	if !isConst {
		return f
	}
	key := types.ExprString(idx)
	set := func(g guardKind) {
		f = f.clone()
		f.guards[key] = g
	}
	switch be.Op.String() {
	case "<":
		if taken {
			set(guardKind{op: "<", c: c})
		}
	case "<=":
		if taken {
			set(guardKind{op: "<", c: c + 1})
		}
	case "==":
		if taken {
			set(guardKind{op: "==", c: c})
		}
	case "!=":
		if !taken { // else-edge of != is ==
			set(guardKind{op: "==", c: c})
		}
	}
	return f
}

func (p *Pass) checkJournalUnit(u funcUnit) {
	jp := &journalProblem{pass: p, unit: u, reported: make(map[token.Pos]bool)}
	g := BuildCFG(u.body)
	res := Solve(g, jp)
	res.ExitFacts(func(b *Block, ret *ast.ReturnStmt, fact any) {
		f := fact.(journalFact)
		for name, dirty := range f.dirty {
			if !dirty || f.images[name] != imgJournal {
				continue
			}
			pos := u.body.Rbrace
			if ret != nil {
				pos = ret.Pos()
			}
			jp.reportOnce(pos,
				"mutated journal image %s reaches this exit without writeJournal: the persisted journal no longer matches the in-memory migration state (PR 8 rule)", name)
		}
	})
}
