package analyzers

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBody parses `src` as the body of a function and returns its CFG.
func parseBody(t *testing.T, src string) (*CFG, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "x.go", "package x\nfunc f() {\n"+src+"\n}", 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := file.Decls[0].(*ast.FuncDecl)
	return BuildCFG(fd.Body), fset
}

func countExits(g *CFG) (rets, falls int) {
	g.Exits(func(b *Block, ret *ast.ReturnStmt) {
		if ret != nil {
			rets++
		} else {
			falls++
		}
	})
	return
}

func TestCFGLinear(t *testing.T) {
	g, _ := parseBody(t, "a := 1\nb := 2\n_ = a + b")
	rets, falls := countExits(g)
	if rets != 0 || falls != 1 {
		t.Fatalf("linear body: rets=%d falls=%d, want 0/1", rets, falls)
	}
	if len(g.Entry.Nodes) != 3 {
		t.Fatalf("entry nodes = %d, want 3", len(g.Entry.Nodes))
	}
}

func TestCFGIfElseReturns(t *testing.T) {
	g, _ := parseBody(t, `
if x() {
	return
}
y()`)
	rets, falls := countExits(g)
	if rets != 1 || falls != 1 {
		t.Fatalf("rets=%d falls=%d, want 1/1", rets, falls)
	}
}

func TestCFGAllPathsReturn(t *testing.T) {
	g, _ := parseBody(t, `
if x() {
	return
}
return`)
	rets, falls := countExits(g)
	if rets != 2 || falls != 0 {
		t.Fatalf("rets=%d falls=%d, want 2/0", rets, falls)
	}
}

// Short-circuit conditions split into one block per leaf condition, and
// no block's Cond is a && / || expression.
func TestCFGShortCircuitSplit(t *testing.T) {
	g, _ := parseBody(t, `
if a() && (b() || !c()) {
	x()
}
y()`)
	leaves := 0
	for _, b := range g.Blocks {
		if b.Cond == nil {
			continue
		}
		leaves++
		if be, ok := b.Cond.(*ast.BinaryExpr); ok {
			op := be.Op.String()
			if op == "&&" || op == "||" {
				t.Fatalf("unsplit short-circuit condition %s", op)
			}
		}
		if _, ok := b.Cond.(*ast.UnaryExpr); ok {
			t.Fatalf("negation not folded into edge swap")
		}
	}
	if leaves != 3 {
		t.Fatalf("leaf conditions = %d, want 3", leaves)
	}
}

func TestCFGLoopEdges(t *testing.T) {
	g, _ := parseBody(t, `
for i := 0; i < n; i++ {
	if bad() {
		break
	}
	work()
}
done()`)
	// The loop head must be reachable and have a back edge path; the
	// block after the loop must be reachable.
	reach := g.Reachable()
	for _, b := range g.Blocks {
		if b.Cond != nil && !reach[b] {
			t.Fatalf("loop condition block unreachable")
		}
	}
	rets, falls := countExits(g)
	if rets != 0 || falls != 1 {
		t.Fatalf("rets=%d falls=%d, want 0/1", rets, falls)
	}
}

func TestCFGRangeLoop(t *testing.T) {
	g, _ := parseBody(t, `
for _, v := range xs {
	use(v)
}
after()`)
	rets, falls := countExits(g)
	if rets != 0 || falls != 1 {
		t.Fatalf("rets=%d falls=%d, want 0/1", rets, falls)
	}
}

func TestCFGInfiniteLoopNoFall(t *testing.T) {
	g, _ := parseBody(t, `
for {
	spin()
}`)
	rets, falls := countExits(g)
	if rets != 0 || falls != 0 {
		t.Fatalf("rets=%d falls=%d, want 0/0 (no exit from for{})", rets, falls)
	}
}

func TestCFGSwitchDefault(t *testing.T) {
	// With a default clause, control cannot bypass the cases.
	g, _ := parseBody(t, `
switch k {
case 1:
	a()
case 2:
	return
default:
	c()
}
after()`)
	rets, falls := countExits(g)
	if rets != 1 || falls != 1 {
		t.Fatalf("rets=%d falls=%d, want 1/1", rets, falls)
	}
}

func TestCFGDeferCollected(t *testing.T) {
	g, _ := parseBody(t, `
defer cleanup()
if x() {
	defer other()
	return
}
y()`)
	if len(g.Defers) != 2 {
		t.Fatalf("defers = %d, want 2", len(g.Defers))
	}
}

func TestCFGDeadCodeAfterReturn(t *testing.T) {
	g, _ := parseBody(t, `
return
dead()`)
	rets, falls := countExits(g)
	if rets != 1 || falls != 0 {
		t.Fatalf("rets=%d falls=%d, want 1/0 (dead tail must not count)", rets, falls)
	}
}

func TestCFGGotoForward(t *testing.T) {
	g, _ := parseBody(t, `
if x() {
	goto out
}
work()
out:
done()`)
	rets, falls := countExits(g)
	if rets != 0 || falls != 1 {
		t.Fatalf("rets=%d falls=%d, want 0/1", rets, falls)
	}
}

func TestCFGSelect(t *testing.T) {
	g, _ := parseBody(t, `
select {
case <-a:
	x()
case b <- 1:
	return
}
after()`)
	rets, falls := countExits(g)
	if rets != 1 || falls != 1 {
		t.Fatalf("rets=%d falls=%d, want 1/1", rets, falls)
	}
}

// ---- dataflow ----------------------------------------------------------

// flagProblem is a toy lattice over {CLEAN=1, HELD=2, EITHER=3}: a call
// to acquire() sets HELD, release() sets CLEAN, join is bitwise-or.
// Branching on the identifier `ok` refines EITHER: true edge → HELD,
// false edge → CLEAN (modelling the swapped-flag idiom).
type flagProblem struct{}

const (
	flagClean  = 1
	flagHeld   = 2
	flagEither = flagClean | flagHeld
)

func (flagProblem) Entry() any { return flagClean }

func (flagProblem) Transfer(n ast.Node, fact any) any {
	f := fact.(int)
	var call *ast.CallExpr
	switch s := n.(type) {
	case *ast.ExprStmt:
		call, _ = s.X.(*ast.CallExpr)
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			call, _ = s.Rhs[0].(*ast.CallExpr)
		}
	}
	if call != nil {
		switch calleeName(call) {
		case "acquire":
			return flagHeld
		case "release":
			return flagClean
		}
	}
	return f
}

func (flagProblem) Branch(cond ast.Expr, taken bool, fact any) any {
	f := fact.(int)
	if id, ok := cond.(*ast.Ident); ok && id.Name == "ok" {
		if taken {
			return f & flagHeld
		}
		return f & flagClean
	}
	return f
}

func (flagProblem) Join(a, b any) any   { return a.(int) | b.(int) }
func (flagProblem) Equal(a, b any) bool { return a == b }

func solveFlags(t *testing.T, src string) map[string]int {
	t.Helper()
	g, _ := parseBody(t, src)
	r := Solve(g, flagProblem{})
	// Collect the fact at each exit, keyed by "ret"/"fall".
	out := map[string]int{}
	r.ExitFacts(func(b *Block, ret *ast.ReturnStmt, fact any) {
		k := "fall"
		if ret != nil {
			k = "ret"
		}
		out[k] |= fact.(int)
	})
	return out
}

func TestDataflowStraightLine(t *testing.T) {
	facts := solveFlags(t, "acquire()\nrelease()")
	if facts["fall"] != flagClean {
		t.Fatalf("fall fact = %d, want CLEAN", facts["fall"])
	}
}

func TestDataflowLeakOnEarlyReturn(t *testing.T) {
	facts := solveFlags(t, `
acquire()
if bad() {
	return
}
release()`)
	if facts["ret"] != flagHeld {
		t.Fatalf("early-return fact = %d, want HELD (leak visible)", facts["ret"])
	}
	if facts["fall"] != flagClean {
		t.Fatalf("fall fact = %d, want CLEAN", facts["fall"])
	}
}

func TestDataflowJoinAtMerge(t *testing.T) {
	facts := solveFlags(t, `
if cond() {
	acquire()
}
after()`)
	if facts["fall"] != flagEither {
		t.Fatalf("merge fact = %d, want EITHER", facts["fall"])
	}
}

// Branch refinement: after `ok := ...; if ok { ... }`, the true edge
// keeps only HELD and the false edge only CLEAN — the solver must apply
// Branch per edge, not Join both ways.
func TestDataflowBranchRefinement(t *testing.T) {
	g, _ := parseBody(t, `
if cond() {
	acquire()
}
if ok {
	release()
	return
}
tail()`)
	r := Solve(g, flagProblem{})
	got := map[string]int{}
	r.ExitFacts(func(b *Block, ret *ast.ReturnStmt, fact any) {
		k := "fall"
		if ret != nil {
			k = "ret"
		}
		got[k] |= fact.(int)
	})
	if got["ret"] != flagClean {
		t.Fatalf("true-edge exit fact = %d, want CLEAN (HELD then released)", got["ret"])
	}
	if got["fall"] != flagClean {
		t.Fatalf("false-edge exit fact = %d, want CLEAN (refined by branch)", got["fall"])
	}
}

func TestDataflowLoopFixpoint(t *testing.T) {
	facts := solveFlags(t, `
for i := 0; i < n; i++ {
	acquire()
	release()
}
after()`)
	if facts["fall"] != flagClean {
		t.Fatalf("loop exit fact = %d, want CLEAN", facts["fall"])
	}
	facts = solveFlags(t, `
for i := 0; i < n; i++ {
	acquire()
}
after()`)
	if facts["fall"] != flagEither {
		t.Fatalf("leaky loop exit fact = %d, want EITHER", facts["fall"])
	}
}

func TestDataflowWalkReplaysFacts(t *testing.T) {
	g, _ := parseBody(t, "acquire()\nmid()\nrelease()")
	r := Solve(g, flagProblem{})
	var seen []int
	r.Walk(g.Entry, func(n ast.Node, before any) {
		seen = append(seen, before.(int))
	})
	want := []int{flagClean, flagHeld, flagHeld}
	if len(seen) != len(want) {
		t.Fatalf("walked %d nodes, want %d", len(seen), len(want))
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("node %d before-fact = %d, want %d", i, seen[i], want[i])
		}
	}
}
