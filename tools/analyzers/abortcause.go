package analyzers

import (
	"go/ast"
	"go/token"
)

// Abortcause enforces the abort-taxonomy discipline of PR 5 in
// internal/core: every ErrAborted the engine hands out flows through
// the single decision point with a typed, meaningful reason.
//
// Rules:
//
//   - A1: the &abortError{...} literal is constructed ONLY inside
//     abortInternal. Anywhere else, an abort error escapes the
//     taxonomy counter and the rollback/unlock sequence.
//   - A2: the abort taxonomy counter (CountAbort) is bumped ONLY inside
//     abortCause, the single decision point — a second bump site would
//     double-count or, worse, count paths that are not aborts.
//   - A3 (flow): inside abortInternal, a return that constructs
//     &abortError must be reached only after the locks were released:
//     either the unlock call (unlockAll), or — the fused commit-tail
//     shape of DESIGN.md §16 — a staged release batch
//     (appendReleaseOps) actually posted by a cleanup doorbell
//     (doCleanup). Staging alone does not release; the `b.Len() > 0`
//     false edge proves the batch was empty (nothing to release). The
//     abort error is the client-visible "aborted" ack, and acking
//     before the locks are actually released recreates the
//     fenced-zombie hazard (Cor3's dual).
//   - A4: the reason passed to abort/abortCause must be a typed
//     metrics.AbortReason value, and the literal metrics.AbortOther is
//     reserved for paths with no better classification — each use
//     carries a //pandora:abortother directive with its justification.
var Abortcause = &Analyzer{
	Name: "abortcause",
	Doc:  "ErrAborted must flow through abortInternal with a typed non-other reason",
	Run:  runAbortcause,
}

func runAbortcause(pass *Pass) error {
	if !inScopeSegs(pass.PkgPath, "core", "abortcause") {
		return nil
	}
	units := pass.funcUnits(true)
	pass.runUnitsConcurrently(units, func(u funcUnit) {
		pass.checkAbortUnit(u)
	})
	return nil
}

// abortFact is the A3 lattice: whether the locks were definitely
// released on the current path. Bits so joins can carry "either".
const (
	abortLocked   = 1 // no release reached
	abortStaged   = 2 // release ops staged (appendReleaseOps), not posted
	abortUnlocked = 4
	abortEither   = abortLocked | abortUnlocked
)

type abortProblem struct{}

func (abortProblem) Entry() any { return abortLocked }

func (abortProblem) Transfer(n ast.Node, fact any) any {
	f := fact.(int)
	shallowCalls(n, func(call *ast.CallExpr) {
		switch calleeName(call) {
		case "unlockAll":
			f = abortUnlocked
		case "appendReleaseOps":
			// The fused tail stages the releases into a batch; the locks
			// are not free until a cleanup doorbell posts them.
			f = abortStaged
		case "doCleanup":
			if f&abortStaged != 0 {
				f = f&^abortStaged | abortUnlocked
			}
		}
	})
	return f
}

func (abortProblem) Branch(cond ast.Expr, taken bool, fact any) any {
	f := fact.(int)
	if f&abortStaged == 0 {
		return f
	}
	// `<b>.Len() > 0` false edge on a staged batch: nothing was staged,
	// so there was nothing to release and the path counts as unlocked.
	if be, ok := cond.(*ast.BinaryExpr); ok && be.Op.String() == ">" && !taken {
		if call, isCall := be.X.(*ast.CallExpr); isCall && calleeName(call) == "Len" {
			return f&^abortStaged | abortUnlocked
		}
	}
	return f
}
func (abortProblem) Join(a, b any) any   { return a.(int) | b.(int) }
func (abortProblem) Equal(a, b any) bool { return a == b }

func (p *Pass) checkAbortUnit(u funcUnit) {
	inAbortInternal := u.name() == "abortInternal"
	inAbortCause := u.name() == "abortCause"

	// A1 / A2 / A4: per-node rules.
	scanShallow(u.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			if isNamed(p.TypesInfo.Types[n].Type, "abortError") && !inAbortInternal {
				p.Reportf(n.Pos(), "abortcause",
					"abortError constructed outside abortInternal: this abort skips the taxonomy counter and the rollback/unlock sequence (PR 5 rule)")
			}
		case *ast.CallExpr:
			switch calleeName(n) {
			case "CountAbort":
				if !inAbortCause {
					p.Reportf(n.Pos(), "abortcause",
						"CountAbort called outside abortCause: the taxonomy counter has exactly one decision point (PR 5 rule)")
				}
			case "abort", "abortCause":
				p.checkAbortKindArg(u, n)
			}
		}
		return false
	})

	// A3: inside abortInternal, every &abortError return follows the
	// unlock.
	if !inAbortInternal {
		return
	}
	g := BuildCFG(u.body)
	res := Solve(g, abortProblem{})
	reported := map[token.Pos]bool{}
	res.ExitFacts(func(b *Block, ret *ast.ReturnStmt, fact any) {
		if ret == nil {
			return
		}
		constructs := false
		for _, e := range ret.Results {
			if scanShallow(e, func(m ast.Node) bool {
				cl, ok := m.(*ast.CompositeLit)
				return ok && isNamed(p.TypesInfo.Types[cl].Type, "abortError")
			}) {
				constructs = true
			}
		}
		if !constructs {
			return
		}
		if fact.(int)&(abortLocked|abortStaged) != 0 && !reported[ret.Pos()] {
			reported[ret.Pos()] = true
			p.Reportf(ret.Pos(), "abortcause",
				"abortError returned on a path that never released the write-set locks (unlockAll, or a staged appendReleaseOps batch posted via doCleanup): acking the abort before the locks are freed recreates the fenced-zombie hazard")
		}
	})
}

// checkAbortKindArg enforces A4 on one abort/abortCause call: the kind
// argument must be a typed metrics.AbortReason, and a literal
// metrics.AbortOther needs a //pandora:abortother directive.
func (p *Pass) checkAbortKindArg(u funcUnit, call *ast.CallExpr) {
	if len(call.Args) < 1 {
		return
	}
	kind := call.Args[0]
	tv, ok := p.TypesInfo.Types[kind]
	if !ok || !isNamed(tv.Type, "AbortReason") {
		p.Reportf(kind.Pos(), "abortcause",
			"abort reason is not a typed metrics.AbortReason value: untyped reasons break the abort taxonomy (PR 5 rule)")
		return
	}
	if lastSelector(kind) == "AbortOther" {
		if !p.Allowed(u.file, call.Pos(), DirAbortOther) {
			p.Reportf(kind.Pos(), "abortcause",
				"metrics.AbortOther used without a //pandora:abortother justification: classify the abort, or justify why no taxonomy bucket fits")
		}
	}
}
