package analyzers

import (
	"go/ast"
	"strings"
)

// Lockpair enforces the lock-registration discipline in internal/core:
// once a lock-acquiring CAS has been posted, the transaction's write
// set must learn about the lock before any further fault-able fabric
// verb fires, so that every failure path (abort, crash recovery,
// validation) sees and releases it. This is exactly the bug class PR 1
// fixed by hand: a link fault injected between the lock CAS and the
// write-set registration leaked the lock until PILL stealing reclaimed
// it.
//
// The pass is flow-insensitive and works in source order over each
// function body. Events:
//
//   - LOCK: a fabric post that can take a lock — ep.CAS(..., ...,
//     tx.lockWord()) directly, or ep.Do/DoSeq(...) where an argument
//     names a lock op (identifier matching (?i)lock|cas, or a local
//     whose Op literal's Swap field is built from lockWord()).
//   - REG: a write-set registration — `tx.writes = append(tx.writes,
//     ...)`, a call to failLocked (the lock hand-over used by error
//     paths), or `w.locked = ...` (marking an already-registered entry
//     as holding its lock).
//   - VERB: any other Endpoint verb call (Read/Write/CAS/FAA/Do/
//     DoSeq/Flush).
//
// Rules:
//
//	R1 — every LOCK must be followed by a REG somewhere later in the
//	     function.
//	R2 — every VERB between a LOCK and its first following REG must be
//	     guarded: its nearest enclosing if-statement must contain a REG
//	     (the `if err := ep.Read(...); err != nil { return
//	     tx.failLocked(...) }` idiom).
//	R3 — a multi-op Do/DoSeq carrying a lock CAS (the one-doorbell
//	     CAS+READ shape) must handle its own error path: its nearest
//	     enclosing if-statement must contain a REG. Single-op posts are
//	     exempt — link admission happens before execution, so an
//	     errored single CAS never took the lock.
var Lockpair = &Analyzer{
	Name: "lockpair",
	Doc:  "lock-acquiring CAS must register in the write set before further fabric verbs",
	Run:  runLockpair,
}

// endpointVerbs are the fabric verbs on rdma.Endpoint.
var endpointVerbs = map[string]bool{
	"Read": true, "Write": true, "CAS": true, "FAA": true,
	"Flush": true, "Do": true, "DoSeq": true,
}

func runLockpair(pass *Pass) error {
	if !IsCorePkg(pass.PkgPath) {
		return nil
	}
	for _, file := range pass.Files {
		// Tests deliberately plant stray locks from fake coordinators to
		// exercise PILL stealing; the registration discipline applies to
		// production code.
		if pass.isTestFile(file) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			pass.checkLockFunc(fd)
		}
	}
	return nil
}

type lockEvent struct {
	node    ast.Node
	kind    int  // evLock, evReg, evVerb
	multi   bool // LOCK: multi-op doorbell post
	guarded bool // VERB/LOCK: nearest enclosing if contains a REG
	cond    bool // REG: inside an error-guard if — covers only the
	// error path, so it cannot terminate a lock's window
}

const (
	evLock = iota
	evReg
	evVerb
)

func (p *Pass) checkLockFunc(fd *ast.FuncDecl) {
	lockVars := p.lockOpVars(fd)

	var events []lockEvent
	// ifStack tracks enclosing if-statements during the walk so each
	// event can be tagged with whether its error path registers and
	// whether a registration is merely an error-path guard.
	type ifFrame struct {
		stmt     *ast.IfStmt
		errGuard bool
	}
	var ifStack []ifFrame
	inErrGuard := func() bool {
		for _, fr := range ifStack {
			if fr.errGuard {
				return true
			}
		}
		return false
	}

	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.IfStmt:
				ifStack = append(ifStack, ifFrame{stmt: m, errGuard: p.condTestsError(m.Cond)})
				if m.Init != nil {
					walk(m.Init)
				}
				walk(m.Cond)
				walk(m.Body)
				ifStack = ifStack[:len(ifStack)-1]
				if m.Else != nil {
					walk(m.Else)
				}
				return false
			case *ast.AssignStmt:
				if p.isRegAssign(m) {
					events = append(events, lockEvent{node: m, kind: evReg, cond: inErrGuard()})
				}
				return true
			case *ast.CallExpr:
				if calleeName(m) == "failLocked" {
					events = append(events, lockEvent{node: m, kind: evReg, cond: inErrGuard()})
					return true
				}
				if !isNamed(p.recvType(m), "Endpoint") || !endpointVerbs[calleeName(m)] {
					return true
				}
				guarded := len(ifStack) > 0 && p.ifRegisters(ifStack[len(ifStack)-1].stmt)
				if isLock, multi := p.isLockPost(m, lockVars); isLock {
					events = append(events, lockEvent{node: m, kind: evLock, multi: multi, guarded: guarded})
				} else {
					events = append(events, lockEvent{node: m, kind: evVerb, guarded: guarded})
				}
				return true
			}
			return true
		})
	}
	walk(fd.Body)

	for i, ev := range events {
		if ev.kind != evLock {
			continue
		}
		if ev.multi && !ev.guarded {
			p.Reportf(ev.node.Pos(), "lockpair",
				"multi-op doorbell posts a lock CAS but its error path does not register the lock (check Swapped / call failLocked): a fault on a later op in the doorbell leaks the lock (PR 1 class)")
			continue
		}
		reg := -1
		for j := i + 1; j < len(events); j++ {
			if events[j].kind == evReg && !events[j].cond {
				reg = j
				break
			}
		}
		if reg < 0 {
			p.Reportf(ev.node.Pos(), "lockpair",
				"lock-acquiring CAS is never registered in the write set in this function; every failure path after it must be able to release the lock")
			continue
		}
		for j := i + 1; j < reg; j++ {
			if events[j].kind == evVerb && !events[j].guarded {
				p.Reportf(events[j].node.Pos(), "lockpair",
					"fabric verb fires between a lock-acquiring CAS and its write-set registration without a registering error path; a fault here leaks the lock (PR 1 class)")
			}
		}
	}
}

// isRegAssign matches the two registration assignment shapes:
// `x.writes = append(x.writes, ...)` and `w.locked = ...`.
func (p *Pass) isRegAssign(as *ast.AssignStmt) bool {
	for i, lhs := range as.Lhs {
		sel, ok := lhs.(*ast.SelectorExpr)
		if !ok {
			continue
		}
		switch sel.Sel.Name {
		case "locked":
			return true
		case "writes":
			if i < len(as.Rhs) {
				if call, ok := as.Rhs[i].(*ast.CallExpr); ok && calleeName(call) == "append" {
					return true
				}
			}
		}
	}
	return false
}

// condTestsError reports whether an if condition inspects an
// error-typed value (`err != nil`, `errors.Is(...)`, ...): the branch
// is an error guard, so a registration inside it covers only the
// failure path.
func (p *Pass) condTestsError(cond ast.Expr) bool {
	return containsNode(cond, func(n ast.Node) bool {
		e, ok := n.(ast.Expr)
		if !ok {
			return false
		}
		tv, ok := p.TypesInfo.Types[e]
		if !ok || tv.Type == nil {
			return false
		}
		n2 := namedType(tv.Type)
		return n2 != nil && n2.Obj().Name() == "error" && n2.Obj().Pkg() == nil
	})
}

// ifRegisters reports whether the if-statement's subtree contains a
// registration event.
func (p *Pass) ifRegisters(ifs *ast.IfStmt) bool {
	return containsNode(ifs, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			return p.isRegAssign(n)
		case *ast.CallExpr:
			return calleeName(n) == "failLocked"
		}
		return false
	})
}

// lockOpVars collects names of local variables bound to Op values whose
// Swap field is built from lockWord(), so Do(lockOp, ...) posts are
// recognised even when the CAS literal was built earlier.
func (p *Pass) lockOpVars(fd *ast.FuncDecl) map[string]bool {
	vars := make(map[string]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) {
				break
			}
			if !exprBuildsLockOp(rhs) {
				continue
			}
			switch lhs := as.Lhs[i].(type) {
			case *ast.Ident:
				vars[lhs.Name] = true
			case *ast.StarExpr:
				if id, ok := lhs.X.(*ast.Ident); ok {
					vars[id.Name] = true
				}
			}
		}
		return true
	})
	return vars
}

// exprBuildsLockOp reports whether e is (a pointer to) an Op composite
// literal whose Swap field calls lockWord()/LockWord().
func exprBuildsLockOp(e ast.Expr) bool {
	if ue, ok := e.(*ast.UnaryExpr); ok {
		e = ue.X
	}
	cl, ok := e.(*ast.CompositeLit)
	if !ok {
		return false
	}
	for _, elt := range cl.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Swap" {
			return containsNode(kv.Value, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return false
				}
				name := calleeName(call)
				return name == "lockWord" || name == "LockWord"
			})
		}
	}
	return false
}

// isLockPost classifies an Endpoint verb call as a lock-acquiring post
// and reports whether it is a multi-op doorbell.
func (p *Pass) isLockPost(call *ast.CallExpr, lockVars map[string]bool) (isLock, multi bool) {
	switch calleeName(call) {
	case "CAS":
		// ep.CAS(addr, expect, swap): lock-acquiring iff swap is built
		// from lockWord().
		if len(call.Args) == 3 && containsNode(call.Args[2], func(n ast.Node) bool {
			c, ok := n.(*ast.CallExpr)
			if !ok {
				return false
			}
			name := calleeName(c)
			return name == "lockWord" || name == "LockWord"
		}) {
			return true, false
		}
	case "Do", "DoSeq":
		for _, arg := range call.Args {
			if argNamesLockOp(arg, lockVars) {
				return true, len(call.Args) > 1 || call.Ellipsis.IsValid()
			}
		}
	}
	return false, false
}

// argNamesLockOp reports whether the Do/DoSeq argument names a lock op:
// a local tracked in lockVars, or an identifier/selector whose name
// mentions lock or CAS (lockOp, pendingCAS, ...).
func argNamesLockOp(arg ast.Expr, lockVars map[string]bool) bool {
	name := ""
	switch a := arg.(type) {
	case *ast.Ident:
		name = a.Name
	case *ast.SelectorExpr:
		name = a.Sel.Name
	default:
		return false
	}
	if lockVars[name] {
		return true
	}
	lower := strings.ToLower(name)
	return strings.Contains(lower, "lock") || strings.Contains(lower, "cas")
}
