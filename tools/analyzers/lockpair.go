package analyzers

import (
	"go/ast"
	"go/token"
	"strings"
)

// Lockpair enforces the lock-registration discipline in internal/core:
// once a lock-acquiring CAS has been posted, the transaction's write
// set must learn about the lock before the function can give up
// control, so that every failure path (abort, crash recovery,
// validation) sees and releases it. This is exactly the bug class PR 1
// fixed by hand: a link fault injected between the lock CAS and the
// write-set registration leaked the lock until PILL stealing reclaimed
// it.
//
// The pass runs the shared CFG/dataflow engine over each function
// body. Events:
//
//   - LOCK: a fabric post that can take a lock — ep.CAS(..., ...,
//     tx.lockWord()) directly, or ep.Do/DoSeq(...) where an argument
//     names a lock op (identifier matching (?i)lock|cas, or a local
//     whose Op literal's Swap field is built from lockWord()).
//   - REG: a write-set registration — `tx.writes = append(tx.writes,
//     ...)`, a call to failLocked (the lock hand-over used by error
//     paths), or `w.locked = ...` (marking an already-registered entry
//     as holding its lock). A REG discharges the obligation.
//
// The obligation is refined along branch edges instead of by source
// order:
//
//   - a single-op post's `err != nil` edge clears — link admission
//     happens before execution, so an errored single CAS never took
//     the lock. A multi-op doorbell's error edge does NOT clear: an
//     earlier op in the doorbell may have executed the CAS before the
//     fault, which is why the error path must itself register
//     (failLocked) or prove the CAS never fired (`lockOp.Swapped`
//     false edge).
//   - the swapped-result false edge clears — the word was not taken.
//
// Any non-crash exit reachable while the obligation is outstanding is
// the leak; the diagnostic points at the lock post.
//
// A second obligation rides the same CFG (DESIGN.md §16): once a
// function acknowledges a commit (`<x>.AckedCommit = true`), its locks
// must reach a release path before any non-crash exit — the synchronous
// unlock (unlockAll), the fused release batch (appendReleaseOps), the
// drain hand-off (handoffTail), or the sanctioned post-ack failure exit
// (postAckFailure). Deleting the async tail's hand-off leaves Commit
// returning with an acked transaction's locks owned by nobody — exactly
// the leak the drain exists to prevent. The read-only ack is exempt: it
// is refined by the `len(<x>.writes) == 0` taken edge, which proves
// there are no locks to release.
var Lockpair = &Analyzer{
	Name: "lockpair",
	Doc:  "lock-acquiring CAS must register in the write set before the function gives up control",
	Run:  runLockpair,
}

// endpointVerbs are the fabric verbs on rdma.Endpoint.
var endpointVerbs = map[string]bool{
	"Read": true, "Write": true, "CAS": true, "FAA": true,
	"Flush": true, "Do": true, "DoSeq": true,
}

func runLockpair(pass *Pass) error {
	if !IsCorePkg(pass.PkgPath) {
		return nil
	}
	units := pass.funcUnits(true)
	pass.runUnitsConcurrently(units, func(u funcUnit) {
		pass.checkLockUnit(u)
	})
	return nil
}

const (
	lockNone    = iota
	lockPending // lock may be held, write set has not learned it
)

// lockFact is the lattice value: the outstanding lock obligation.
type lockFact struct {
	state    int
	pos      token.Pos // the lock post, for reporting
	flagName string    // swapped result var of a direct CAS post
	errName  string    // error var of the post
	multi    bool      // multi-op doorbell (error edge does not clear)
	swapSel  bool      // obligation already refined by a .Swapped edge
}

type lockProblem struct {
	pass     *Pass
	lockVars map[string]bool
	reported map[token.Pos]bool
}

func (lp *lockProblem) Entry() any { return lockFact{} }

func (lp *lockProblem) Equal(a, b any) bool { return a == b }

func (lp *lockProblem) Join(a, b any) any {
	fa, fb := a.(lockFact), b.(lockFact)
	if fa.state == lockPending {
		return fa
	}
	return fb
}

func (lp *lockProblem) Transfer(n ast.Node, fact any) any {
	f := fact.(lockFact)
	as, isAssign := n.(*ast.AssignStmt)
	if isAssign && lp.pass.isRegAssign(as) {
		f = lockFact{}
	}
	shallowCalls(n, func(call *ast.CallExpr) {
		switch calleeName(call) {
		case "failLocked":
			f = lockFact{}
			return
		case "unlockAddr", "unlockAll":
			// Releasing the word discharges the obligation: the slot-moved
			// and insert-conflict back-out paths release and return without
			// ever registering. (Their release-failure branches hand the
			// lock to failLocked.)
			f = lockFact{}
			return
		}
		isLock, multi := lp.lockPost(call)
		if !isLock {
			return
		}
		f = lockFact{state: lockPending, pos: call.Pos(), multi: multi}
		if !isAssign {
			return
		}
		// A post whose results are bound directly: capture the swapped
		// flag (3-ary CAS form) and the error for branch refinement.
		direct := false
		for _, rhs := range as.Rhs {
			if rhs == ast.Expr(call) {
				direct = true
			}
		}
		if !direct {
			return
		}
		if len(as.Lhs) > 0 {
			if id, ok := as.Lhs[len(as.Lhs)-1].(*ast.Ident); ok && id.Name != "_" {
				f.errName = id.Name
			}
		}
		if !multi && len(as.Lhs) == 3 {
			if id, ok := as.Lhs[1].(*ast.Ident); ok && id.Name != "_" {
				f.flagName = id.Name
			}
		}
	})
	return f
}

// lockPost classifies an Endpoint verb call as a lock-acquiring post
// and reports whether it is a multi-op doorbell.
func (lp *lockProblem) lockPost(call *ast.CallExpr) (isLock, multi bool) {
	if !isNamed(lp.pass.recvType(call), "Endpoint") || !endpointVerbs[calleeName(call)] {
		return false, false
	}
	return lp.pass.isLockPost(call, lp.lockVars)
}

func (lp *lockProblem) Branch(cond ast.Expr, taken bool, fact any) any {
	f := fact.(lockFact)
	if f.state != lockPending {
		return f
	}
	switch c := cond.(type) {
	case *ast.Ident:
		// The direct CAS's swapped result: false edge means the word was
		// not taken.
		if f.flagName != "" && c.Name == f.flagName && !taken {
			return lockFact{}
		}
	case *ast.SelectorExpr:
		// `lockOp.Swapped`: the doorbell error path proving whether the
		// CAS fired. False edge clears; the true edge now knows the lock
		// IS held, so the error refinement below must stop clearing.
		if c.Sel.Name == "Swapped" {
			if !taken {
				return lockFact{}
			}
			f.swapSel = true
			return f
		}
	case *ast.BinaryExpr:
		// `err != nil` on the post's error: an errored single-op post
		// never executed (admission before execution). A multi-op
		// doorbell may have fired the CAS before the fault.
		if c.Op.String() == "!=" && taken && !f.multi && !f.swapSel && f.errName != "" && isNilIdent(c.Y) {
			if id, ok := c.X.(*ast.Ident); ok && id.Name == f.errName {
				return lockFact{}
			}
		}
	}
	return f
}

// ackFact is the ack-obligation lattice value: whether the commit has
// been acknowledged without its locks reaching a release path yet.
type ackFact struct {
	pending  bool
	pos      token.Pos // the AckedCommit assignment, for reporting
	readOnly bool      // the len(writes) == 0 edge was taken: no locks exist
}

// ackReleases are the calls that hand an acknowledged commit's locks to
// a release path: the synchronous unlock, the fused release batch, the
// async drain hand-off, and the sanctioned post-ack failure exit.
var ackReleases = map[string]bool{
	"unlockAll":        true,
	"appendReleaseOps": true,
	"handoffTail":      true,
	"postAckFailure":   true,
}

type ackProblem struct{}

func (ackProblem) Entry() any { return ackFact{} }

func (ackProblem) Equal(a, b any) bool { return a == b }

func (ackProblem) Join(a, b any) any {
	fa, fb := a.(ackFact), b.(ackFact)
	if fa.pending {
		return fa
	}
	if fb.pending {
		return fb
	}
	// readOnly survives a merge only when proven on both sides.
	return ackFact{readOnly: fa.readOnly && fb.readOnly}
}

func (ackProblem) Transfer(n ast.Node, fact any) any {
	f := fact.(ackFact)
	if as, ok := n.(*ast.AssignStmt); ok {
		for i, lhs := range as.Lhs {
			sel, ok := lhs.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "AckedCommit" || i >= len(as.Rhs) {
				continue
			}
			if id, ok := as.Rhs[i].(*ast.Ident); ok && id.Name == "true" && !f.readOnly {
				f.pending = true
				f.pos = as.Pos()
			}
		}
	}
	shallowCalls(n, func(call *ast.CallExpr) {
		if ackReleases[calleeName(call)] {
			f.pending = false
		}
	})
	return f
}

func (ackProblem) Branch(cond ast.Expr, taken bool, fact any) any {
	f := fact.(ackFact)
	// `len(<x>.writes) == 0` taken edge: a read-only transaction holds
	// no locks, so its ack carries no release obligation.
	if be, ok := cond.(*ast.BinaryExpr); ok && be.Op.String() == "==" && taken {
		if call, isCall := be.X.(*ast.CallExpr); isCall && calleeName(call) == "len" &&
			len(call.Args) == 1 && lastSelector(call.Args[0]) == "writes" {
			if lit, isLit := be.Y.(*ast.BasicLit); isLit && lit.Value == "0" {
				f.readOnly = true
			}
		}
	}
	return f
}

func (p *Pass) checkLockUnit(u funcUnit) {
	lp := &lockProblem{pass: p,
		lockVars: p.lockOpVars(u.body), reported: make(map[token.Pos]bool)}
	g := BuildCFG(u.body)
	res := Solve(g, lp)
	res.ExitFacts(func(b *Block, ret *ast.ReturnStmt, fact any) {
		if returnsCrash(ret) {
			return
		}
		f := fact.(lockFact)
		if f.state != lockPending || lp.reported[f.pos] {
			return
		}
		lp.reported[f.pos] = true
		kind := "lock-acquiring CAS"
		if f.multi {
			kind = "doorbell posting a lock CAS"
		}
		p.Reportf(f.pos, "lockpair",
			"%s can reach a function exit before the write set registers the lock (append to writes, set .locked, or hand over via failLocked): a fault on that path leaks the lock (PR 1 class)", kind)
	})

	ackRes := Solve(g, ackProblem{})
	ackReported := make(map[token.Pos]bool)
	ackRes.ExitFacts(func(b *Block, ret *ast.ReturnStmt, fact any) {
		if returnsCrash(ret) {
			return
		}
		f := fact.(ackFact)
		if !f.pending || ackReported[f.pos] {
			return
		}
		ackReported[f.pos] = true
		p.Reportf(f.pos, "lockpair",
			"acknowledged commit can reach a function exit without handing its locks to a release path (unlockAll, appendReleaseOps, handoffTail, or postAckFailure): the acked transaction's locks would be owned by nobody until recovery (§16)")
	})
}

// isRegAssign matches the two registration assignment shapes:
// `x.writes = append(x.writes, ...)` and `w.locked = ...`.
func (p *Pass) isRegAssign(as *ast.AssignStmt) bool {
	for i, lhs := range as.Lhs {
		sel, ok := lhs.(*ast.SelectorExpr)
		if !ok {
			continue
		}
		switch sel.Sel.Name {
		case "locked":
			return true
		case "writes":
			if i < len(as.Rhs) {
				if call, ok := as.Rhs[i].(*ast.CallExpr); ok && calleeName(call) == "append" {
					return true
				}
			}
		}
	}
	return false
}

// lockOpVars collects names of local variables bound to Op values whose
// Swap field is built from lockWord(), so Do(lockOp, ...) posts are
// recognised even when the CAS literal was built earlier.
func (p *Pass) lockOpVars(body ast.Node) map[string]bool {
	vars := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) {
				break
			}
			if !exprBuildsLockOp(rhs) {
				continue
			}
			switch lhs := as.Lhs[i].(type) {
			case *ast.Ident:
				vars[lhs.Name] = true
			case *ast.StarExpr:
				if id, ok := lhs.X.(*ast.Ident); ok {
					vars[id.Name] = true
				}
			}
		}
		return true
	})
	return vars
}

// exprBuildsLockOp reports whether e is (a pointer to) an Op composite
// literal whose Swap field calls lockWord()/LockWord().
func exprBuildsLockOp(e ast.Expr) bool {
	if ue, ok := e.(*ast.UnaryExpr); ok {
		e = ue.X
	}
	cl, ok := e.(*ast.CompositeLit)
	if !ok {
		return false
	}
	for _, elt := range cl.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Swap" {
			return containsNode(kv.Value, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return false
				}
				name := calleeName(call)
				return name == "lockWord" || name == "LockWord"
			})
		}
	}
	return false
}

// isLockPost classifies an Endpoint verb call as a lock-acquiring post
// and reports whether it is a multi-op doorbell.
func (p *Pass) isLockPost(call *ast.CallExpr, lockVars map[string]bool) (isLock, multi bool) {
	switch calleeName(call) {
	case "CAS":
		// ep.CAS(addr, expect, swap): lock-acquiring iff swap is built
		// from lockWord().
		if len(call.Args) == 3 && containsNode(call.Args[2], func(n ast.Node) bool {
			c, ok := n.(*ast.CallExpr)
			if !ok {
				return false
			}
			name := calleeName(c)
			return name == "lockWord" || name == "LockWord"
		}) {
			return true, false
		}
	case "Do", "DoSeq":
		for _, arg := range call.Args {
			if argNamesLockOp(arg, lockVars) {
				return true, len(call.Args) > 1 || call.Ellipsis.IsValid()
			}
		}
	}
	return false, false
}

// argNamesLockOp reports whether the Do/DoSeq argument names a lock op:
// a local tracked in lockVars, or an identifier/selector whose name
// mentions lock or CAS (lockOp, pendingCAS, ...).
func argNamesLockOp(arg ast.Expr, lockVars map[string]bool) bool {
	name := ""
	switch a := arg.(type) {
	case *ast.Ident:
		name = a.Name
	case *ast.SelectorExpr:
		name = a.Sel.Name
	default:
		return false
	}
	if lockVars[name] {
		return true
	}
	lower := strings.ToLower(name)
	return strings.Contains(lower, "lock") || strings.Contains(lower, "cas")
}
