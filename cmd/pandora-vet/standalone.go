package main

// Standalone -json mode: pandora-vet loads, typechecks, and analyzes
// the module's packages itself — no `go vet` driver — and prints one
// deterministic JSON report. CI uploads this artifact so a lint failure
// can be inspected without re-running the toolchain:
//
//	pandora-vet -json ./...           # exit 2 + findings array on stdout
//
// The loader is module-aware but deliberately small: package import
// paths under the module path map 1:1 onto directories, build-tag
// filtering goes through go/build's default context (so the
// internal/race race.go/norace.go pair resolves exactly as `go build`
// would), dependencies are typechecked once and memoized, and the
// standard library resolves through the source importer. Test files
// are excluded: the production tree is the lint surface, and the vet
// driver path still covers test variants.

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"

	"pandora/tools/analyzers"
)

type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

type jsonReport struct {
	Module   string        `json:"module"`
	Packages int           `json:"packages"`
	Findings []jsonFinding `json:"findings"`
}

func runJSON(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	modRoot, modPath, err := moduleInfo()
	if err != nil {
		fmt.Fprintln(os.Stderr, "pandora-vet:", err)
		return 1
	}
	dirs, err := expandPatterns(modRoot, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pandora-vet:", err)
		return 1
	}

	ld := newLoader(modRoot, modPath)
	var pkgs []*loadedPkg
	for _, dir := range dirs {
		rel, _ := filepath.Rel(modRoot, dir)
		path := modPath
		if rel != "." {
			path = modPath + "/" + filepath.ToSlash(rel)
		}
		lp, err := ld.load(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pandora-vet: %s: %v\n", path, err)
			return 1
		}
		if lp != nil {
			pkgs = append(pkgs, lp)
		}
	}

	// The loader is done; analysis of distinct packages is independent,
	// so fan the suite out across packages.
	var (
		mu       sync.Mutex
		findings = []jsonFinding{}
	)
	workers := runtime.GOMAXPROCS(0)
	if workers > len(pkgs) {
		workers = len(pkgs)
	}
	if workers < 1 {
		workers = 1
	}
	ch := make(chan *loadedPkg)
	var wg sync.WaitGroup
	errored := false
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for lp := range ch {
				for _, a := range analyzers.All() {
					pass := &analyzers.Pass{
						Fset:      ld.fset,
						Files:     lp.files,
						Pkg:       lp.pkg,
						TypesInfo: lp.info,
						PkgPath:   lp.importPath,
						Report: func(d analyzers.Diagnostic) {
							pos := ld.fset.Position(d.Pos)
							file, err := filepath.Rel(modRoot, pos.Filename)
							if err != nil {
								file = pos.Filename
							}
							mu.Lock()
							findings = append(findings, jsonFinding{
								File: filepath.ToSlash(file), Line: pos.Line, Col: pos.Column,
								Analyzer: d.Category, Message: d.Message,
							})
							mu.Unlock()
						},
					}
					if err := a.Run(pass); err != nil {
						fmt.Fprintf(os.Stderr, "pandora-vet: %s on %s: %v\n", a.Name, lp.importPath, err)
						mu.Lock()
						errored = true
						mu.Unlock()
					}
				}
			}
		}()
	}
	for _, lp := range pkgs {
		ch <- lp
	}
	close(ch)
	wg.Wait()
	if errored {
		return 1
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(jsonReport{Module: modPath, Packages: len(pkgs), Findings: findings}); err != nil {
		fmt.Fprintln(os.Stderr, "pandora-vet:", err)
		return 1
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}

// moduleInfo finds the enclosing module root and its module path by
// walking up from the working directory to the nearest go.mod.
func moduleInfo() (root, path string, err error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod: no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// expandPatterns resolves `./...`-style patterns into package
// directories (directories holding at least one buildable non-test Go
// file), in sorted order.
func expandPatterns(modRoot string, patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] && hasBuildableGo(dir) {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "." || pat == "" {
				pat = "."
			}
		}
		base := pat
		if !filepath.IsAbs(base) {
			base = filepath.Join(modRoot, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
		}
		if !recursive {
			add(base)
			continue
		}
		err := filepath.WalkDir(base, func(p string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			add(p)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasBuildableGo(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if ok, err := build.Default.MatchFile(dir, name); err == nil && ok {
			return true
		}
	}
	return false
}

// loadedPkg is one typechecked package.
type loadedPkg struct {
	importPath string
	files      []*ast.File
	pkg        *types.Package
	info       *types.Info
}

// loader typechecks module packages recursively, memoizing by import
// path. Standard-library imports resolve through the source importer
// (the build container has no module proxy and no precompiled export
// data).
type loader struct {
	fset    *token.FileSet
	modRoot string
	modPath string
	pkgs    map[string]*loadedPkg
	loading map[string]bool
	std     types.ImporterFrom
}

func newLoader(modRoot, modPath string) *loader {
	fset := token.NewFileSet()
	std, _ := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	return &loader{
		fset:    fset,
		modRoot: modRoot,
		modPath: modPath,
		pkgs:    make(map[string]*loadedPkg),
		loading: make(map[string]bool),
		std:     std,
	}
}

// load parses and typechecks the module package at the import path,
// loading module-internal dependencies first. Returns (nil, nil) for a
// directory with no buildable files.
func (ld *loader) load(path string) (*loadedPkg, error) {
	if lp, ok := ld.pkgs[path]; ok {
		return lp, nil
	}
	if ld.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	ld.loading[path] = true
	defer delete(ld.loading, path)

	dir := ld.modRoot
	if path != ld.modPath {
		rel, ok := strings.CutPrefix(path, ld.modPath+"/")
		if !ok {
			return nil, fmt.Errorf("%s is outside module %s", path, ld.modPath)
		}
		dir = filepath.Join(ld.modRoot, filepath.FromSlash(rel))
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if ok, err := build.Default.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		ld.pkgs[path] = nil
		return nil, nil
	}

	// Module-internal dependencies first, so the importer below only
	// ever sees memoized results.
	for _, f := range files {
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if p == ld.modPath || strings.HasPrefix(p, ld.modPath+"/") {
				if _, err := ld.load(p); err != nil {
					return nil, err
				}
			}
		}
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	tc := &types.Config{Importer: (*loaderImporter)(ld)}
	pkg, err := tc.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, err
	}
	lp := &loadedPkg{importPath: path, files: files, pkg: pkg, info: info}
	ld.pkgs[path] = lp
	return lp, nil
}

// loaderImporter adapts the loader as a types.Importer: module paths
// come from the memo table, everything else from the source importer.
type loaderImporter loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	ld := (*loader)(li)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == ld.modPath || strings.HasPrefix(path, ld.modPath+"/") {
		lp, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		if lp == nil {
			return nil, fmt.Errorf("no buildable Go files for %s", path)
		}
		return lp.pkg, nil
	}
	return ld.std.ImportFrom(path, ld.modRoot, 0)
}
