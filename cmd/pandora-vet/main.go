// Command pandora-vet runs Pandora's protocol-invariant analyzer suite
// (tools/analyzers) as a go vet tool:
//
//	go build -o bin/pandora-vet ./cmd/pandora-vet
//	go vet -vettool=$(pwd)/bin/pandora-vet ./...
//
// or, as a convenience, with package patterns directly — it then
// re-executes itself under `go vet -vettool`:
//
//	pandora-vet ./...
//
// With -json it instead loads and typechecks the module itself and
// prints one machine-readable report (see standalone.go):
//
//	pandora-vet -json ./...
//
// The binary speaks the vet unit-checker protocol by hand (the
// container this repo builds in has no module proxy, so
// golang.org/x/tools/go/analysis/unitchecker is not available): the go
// command invokes it once per package with a JSON config file naming
// the sources and the export data of every dependency, and once with
// -V=full to fingerprint the tool for its action cache.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"pandora/tools/analyzers"
)

func main() {
	args := os.Args[1:]
	switch {
	case len(args) == 1 && strings.HasPrefix(args[0], "-V"):
		printVersion()
	case len(args) == 1 && args[0] == "-flags":
		// The go command asks which analyzer flags the tool accepts so
		// it can validate pass-through flags; the suite defines none.
		fmt.Println("[]")
	case len(args) == 1 && strings.HasSuffix(args[0], ".cfg"):
		os.Exit(runUnit(args[0]))
	case len(args) >= 1 && args[0] == "-json":
		os.Exit(runJSON(args[1:]))
	case len(args) >= 1:
		os.Exit(runStandalone(args))
	default:
		fmt.Fprintln(os.Stderr, "usage: pandora-vet <packages>   (or: go vet -vettool=pandora-vet <packages>)")
		os.Exit(2)
	}
}

// printVersion implements `pandora-vet -V=full`: the go command hashes
// this line into its action cache key, so it must change whenever the
// analyzers change. Hashing the binary itself guarantees that.
func printVersion() {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s version devel buildID=%x\n", filepath.Base(exe), h.Sum(nil)[:16])
}

// runStandalone re-executes the suite through `go vet -vettool=self`,
// so `pandora-vet ./...` behaves exactly like the CI invocation.
func runStandalone(patterns []string) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, patterns...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return 0
}

// vetConfig is the JSON unit description the go command hands to a
// vettool (the same schema unitchecker consumes).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "pandora-vet: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// The suite exports no cross-package facts, but the go command
	// expects the facts file to exist for caching.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}
	}
	if cfg.VetxOnly {
		writeVetx()
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetx()
				return 0
			}
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		files = append(files, f)
	}

	tc := &types.Config{
		Importer:  newUnitImporter(fset, &cfg),
		GoVersion: cfg.GoVersion,
		Error:     func(error) {}, // collect via Check's return; keep going
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	pkg, err := tc.Check(analyzers.BasePkgPath(cfg.ImportPath), fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0
		}
		fmt.Fprintf(os.Stderr, "pandora-vet: typechecking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	var diags []analyzers.Diagnostic
	for _, a := range analyzers.All() {
		pass := &analyzers.Pass{
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			PkgPath:   cfg.ImportPath,
			Report:    func(d analyzers.Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			fmt.Fprintf(os.Stderr, "pandora-vet: %s on %s: %v\n", a.Name, cfg.ImportPath, err)
			return 1
		}
	}
	writeVetx()
	if len(diags) == 0 {
		return 0
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", fset.Position(d.Pos), d.Category, d.Message)
	}
	return 2
}

// unitImporter resolves imports from the export-data files the go
// command listed in the config, through the gc importer.
type unitImporter struct {
	cfg  *vetConfig
	base types.ImporterFrom
}

func newUnitImporter(fset *token.FileSet, cfg *vetConfig) *unitImporter {
	lookup := func(path string) (io.ReadCloser, error) {
		if p, ok := cfg.ImportMap[path]; ok {
			path = p
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	base, _ := importer.ForCompiler(fset, cfg.Compiler, lookup).(types.ImporterFrom)
	return &unitImporter{cfg: cfg, base: base}
}

func (u *unitImporter) Import(path string) (*types.Package, error) {
	return u.ImportFrom(path, "", 0)
}

func (u *unitImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := u.cfg.ImportMap[path]; ok {
		path = p
	}
	return u.base.ImportFrom(path, dir, 0)
}
