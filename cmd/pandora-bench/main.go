// Command pandora-bench regenerates the paper's evaluation (§6): every
// table and figure has an experiment id. Run them all or one at a time:
//
//	pandora-bench -experiment all
//	pandora-bench -experiment table2
//	pandora-bench -experiment fig8 -quick
//
// Output is plain text: one section per experiment with the series or
// table the paper reports, plus shape notes. EXPERIMENTS.md records a
// full run next to the paper's numbers.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	pandora "pandora"
	"pandora/internal/bench"
)

func main() {
	os.Exit(benchMain())
}

// benchMain holds main's body so that deferred profile writers run even
// when an experiment fails (os.Exit skips defers).
func benchMain() int {
	experiment := flag.String("experiment", "all", "experiment id: all, table1, table2, fig6, fig7, fig8, fig9, fig10, fig11, fig12, fig13, fig14, scan, tradrec, tradss, distfd, persist, readcache, hotlock, commitpipe, soak")
	quick := flag.Bool("quick", false, "run at CI scale instead of full scale")
	jsonOut := flag.String("json", "", "also write machine-readable results of JSON-capable experiments (readcache, table2, hotlock, commitpipe, soak) to this file")
	metricsOut := flag.String("metrics", "", "write the deterministic observability artifact (per-phase latency percentiles, abort taxonomy, verb counters) of metrics-capable experiments (table2, readcache) to this file")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	mutexprofile := flag.String("mutexprofile", "", "write a mutex-contention profile to this file on exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *mutexprofile != "" {
		runtime.SetMutexProfileFraction(5)
		defer writeProfile("mutex", *mutexprofile)
	}
	if *memprofile != "" {
		defer writeProfile("heap", *memprofile)
	}

	s := bench.Full()
	litmusIters := 150
	steadyTx := 1500
	if *quick {
		s = bench.Quick()
		litmusIters = 50
		steadyTx = 300
	}

	ids := strings.Split(*experiment, ",")
	if *experiment == "all" {
		ids = []string{"table1", "table2", "tradrec", "scan", "tradss", "fig6", "fig7",
			"fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "distfd", "persist",
			"readcache", "hotlock", "commitpipe", "soak"}
	}
	metricsRes := map[string]*bench.MetricsResult{}
	for _, id := range ids {
		if err := run(id, s, litmusIters, steadyTx, *quick, *jsonOut, *metricsOut != "", metricsRes); err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", id, err)
			return 1
		}
	}
	if *metricsOut != "" {
		if len(metricsRes) == 0 {
			fmt.Fprintf(os.Stderr, "-metrics: no metrics-capable experiment in %q\n", *experiment)
			return 1
		}
		data, err := json.MarshalIndent(metricsRes, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "-metrics: %v\n", err)
			return 1
		}
		data = append(data, '\n')
		if err := os.WriteFile(*metricsOut, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "-metrics: %v\n", err)
			return 1
		}
		fmt.Printf("[wrote %s]\n", *metricsOut)
	}
	return 0
}

// writeProfile snapshots the named runtime profile into path.
func writeProfile(name, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%sprofile: %v\n", name, err)
		return
	}
	defer f.Close()
	if name == "heap" {
		runtime.GC() // get up-to-date allocation statistics
	}
	if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
		fmt.Fprintf(os.Stderr, "%sprofile: %v\n", name, err)
	}
}

func section(id, paper string) {
	fmt.Printf("\n===== %s (%s) =====\n", id, paper)
}

func run(id string, s bench.Scale, litmusIters, steadyTx int, quick bool, jsonOut string, wantMetrics bool, metricsRes map[string]*bench.MetricsResult) error {
	start := time.Now()
	defer func() { fmt.Printf("[%s took %v]\n", id, time.Since(start).Round(time.Millisecond)) }()
	switch id {
	case "table1":
		section(id, "Table 1: litmus validation & seeded FORD bugs")
		r, err := bench.Table1(litmusIters)
		if err != nil {
			return err
		}
		fmt.Print(r)
	case "table2":
		section(id, "Table 2: Pandora recovery latency vs outstanding coordinators")
		r, err := bench.Table2(s, pandora.ProtocolPandora)
		if err != nil {
			return err
		}
		fmt.Print(r)
		if jsonOut != "" || wantMetrics {
			// The throughput run above races wall-clock workers, so the
			// machine-readable artifact comes from the deterministic
			// observability side pass (byte-identical per seed).
			m, err := bench.MetricsPass(id, s, steadyTx)
			if err != nil {
				return err
			}
			fmt.Print(m)
			metricsRes[id] = m
			if jsonOut != "" {
				data, err := m.JSON()
				if err != nil {
					return err
				}
				if err := os.WriteFile(jsonOut, data, 0o644); err != nil {
					return err
				}
				fmt.Printf("[wrote %s]\n", jsonOut)
			}
		}
	case "tradrec":
		section(id, "§6.1: traditional lock-logging recovery latency")
		r, err := bench.Table2(s, pandora.ProtocolTradLog)
		if err != nil {
			return err
		}
		fmt.Print(r)
	case "scan":
		section(id, "§6.1: Baseline stop-the-world scan recovery")
		fmt.Print(bench.BaselineScan([]int{250_000, 500_000, 1_000_000, 2_000_000}))
	case "tradss":
		section(id, "§6.2.1: traditional lock-logging steady-state overhead")
		r, err := bench.SteadyStateOverhead(s, steadyTx)
		if err != nil {
			return err
		}
		fmt.Print(r)
	case "fig6":
		section(id, "Figure 6: PILL steady-state overhead")
		r, err := bench.Fig6(s)
		if err != nil {
			return err
		}
		fmt.Print(r)
	case "fig7":
		section(id, "Figure 7: steady-state vs MTTF")
		// The paper's 40 s run uses MTTF 10/2/1 s; scaled to our
		// timeline these keep the same failures-per-run ratios.
		mttfs := []time.Duration{s.Timeline / 4, s.Timeline / 8, s.Timeline / 12}
		r, err := bench.Fig7(s, mttfs)
		if err != nil {
			return err
		}
		fmt.Print(r)
	case "fig8", "fig9", "fig10", "fig11", "fig12":
		names := map[string]string{
			"fig8": "micro", "fig9": "smallbank", "fig10": "tatp", "fig11": "tpcc", "fig12": "smallbank",
		}
		coords := 0
		note := ""
		if id == "fig12" {
			coords = s.Coordinators / 2
			note = " [low contention: half the coordinators]"
		}
		section(id, fmt.Sprintf("Fail-over throughput: %s%s", names[id], note))
		r, err := bench.Failover(s, names[id], coords)
		if err != nil {
			return err
		}
		fmt.Print(r)
	case "fig13", "fig14":
		hot := 1000
		if id == "fig14" {
			hot = 100_000
		}
		if hot > s.Keys {
			hot = s.Keys
		}
		section(id, fmt.Sprintf("Stall sensitivity, hot=%d", hot))
		r, err := bench.StallSensitivity(s, hot, s.Timeline/2)
		if err != nil {
			return err
		}
		fmt.Print(r)
	case "persist":
		section(id, "§7 ablation: NVM persistence flush overhead")
		r, err := bench.PersistenceOverhead(s, steadyTx)
		if err != nil {
			return err
		}
		fmt.Print(r)
	case "distfd":
		section(id, "§6.4: distributed failure detector")
		r, err := bench.DistributedFD(3, 5*time.Millisecond)
		if err != nil {
			return err
		}
		fmt.Print(r)
	case "readcache":
		section(id, "Validated read cache: zipfian read latency vs no-cache baseline")
		r, err := bench.ReadCache(s, steadyTx*4)
		if err != nil {
			return err
		}
		fmt.Print(r)
		if jsonOut != "" {
			data, err := r.JSON()
			if err != nil {
				return err
			}
			if err := os.WriteFile(jsonOut, data, 0o644); err != nil {
				return err
			}
			fmt.Printf("[wrote %s]\n", jsonOut)
		}
		if wantMetrics {
			m, err := bench.MetricsPass(id, s, steadyTx)
			if err != nil {
				return err
			}
			metricsRes[id] = m
		}
	case "hotlock":
		section(id, "Adaptive FAA ticket locks: contended writes vs CAS-spin baseline")
		r, err := bench.Hotlock(s, steadyTx/5)
		if err != nil {
			return err
		}
		fmt.Print(r)
		if jsonOut != "" {
			data, err := r.JSON()
			if err != nil {
				return err
			}
			if err := os.WriteFile(jsonOut, data, 0o644); err != nil {
				return err
			}
			fmt.Printf("[wrote %s]\n", jsonOut)
		}
	case "commitpipe":
		section(id, "Pipelined commit tail: doorbell fusion + async commit-back")
		r, err := bench.CommitPipe(s, steadyTx/5)
		if err != nil {
			return err
		}
		fmt.Print(r)
		if jsonOut != "" {
			data, err := r.JSON()
			if err != nil {
				return err
			}
			if err := os.WriteFile(jsonOut, data, 0o644); err != nil {
				return err
			}
			fmt.Printf("[wrote %s]\n", jsonOut)
		}
	case "soak":
		section(id, "Endurance lane: mixed TATP+SmallBank tenants, fault schedule, tuned knobs")
		sc := bench.SoakFull()
		if quick {
			sc = bench.SoakQuick()
		}
		r, err := bench.Soak(sc, 42)
		if err != nil {
			return err
		}
		fmt.Print(r)
		if jsonOut != "" {
			data, err := r.JSON()
			if err != nil {
				return err
			}
			if err := os.WriteFile(jsonOut, data, 0o644); err != nil {
				return err
			}
			fmt.Printf("[wrote %s]\n", jsonOut)
		}
	default:
		return fmt.Errorf("unknown experiment %q", id)
	}
	return nil
}
