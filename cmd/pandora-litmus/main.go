// Command pandora-litmus runs the end-to-end litmus validation
// framework (§5) from the command line:
//
//	pandora-litmus                      # validate fixed Pandora
//	pandora-litmus -protocol ford       # validate the fixed Baseline
//	pandora-litmus -bug covert-locks    # seed a Table-1 bug and catch it
//	pandora-litmus -iterations 1000     # more crash-injection coverage
//	pandora-litmus -replay <repro.json> # re-run a shrunk proptest repro
//
// Exit status is non-zero when a fixed protocol shows violations, when
// a seeded bug goes undetected, or when a replayed repro reproduces
// its recorded violation.
package main

import (
	"flag"
	"fmt"
	"os"

	"pandora/internal/core"
	"pandora/internal/litmus"
)

func main() {
	protoName := flag.String("protocol", "pandora", "protocol: pandora, ford, tradlog")
	bug := flag.String("bug", "", "seed a Table-1 bug: complicit-abort, missing-insert-log, covert-locks, relaxed-locks, lost-decision, log-without-lock")
	iterations := flag.Int("iterations", 400, "iterations per litmus test")
	seed := flag.Int64("seed", 1, "random seed")
	noCrashes := flag.Bool("no-crashes", false, "disable crash injection (pure C1 validation)")
	replay := flag.String("replay", "", "replay a bin/proptest-repro-*.json minimised schedule; exit 1 if its violation reproduces")
	flag.Parse()

	if *replay != "" {
		rp, err := litmus.LoadRepro(*replay)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Printf("replaying %s: seed=%d case=%d shrinks=%d txs=%d\nrecorded violation: %s\n",
			*replay, rp.Seed, rp.Case, rp.Shrinks, len(rp.Schedule.Txs), rp.Violation)
		rep, err := litmus.RunSchedule(rp.Schedule)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", rp.Schedule.Name, err)
			os.Exit(1)
		}
		fmt.Printf("%-28s iters=%d crashes=%d recoveries=%d C/A/?=%d/%d/%d violations=%d\n",
			rep.Test, rep.Iterations, rep.Crashes, rep.Recoveries,
			rep.Committed, rep.Aborted, rep.Unknown, len(rep.Violations))
		if len(rep.Violations) > 0 {
			for i, v := range rep.Violations {
				if i >= 3 {
					fmt.Printf("    ... and %d more\n", len(rep.Violations)-3)
					break
				}
				fmt.Printf("    %s\n", v)
			}
			fmt.Println("RESULT: recorded violation still reproduces")
			os.Exit(1)
		}
		fmt.Println("RESULT: recorded violation no longer reproduces")
		return
	}

	var proto core.Protocol
	switch *protoName {
	case "pandora":
		proto = core.ProtocolPandora
	case "ford":
		proto = core.ProtocolFORD
	case "tradlog":
		proto = core.ProtocolTradLog
	default:
		fmt.Fprintf(os.Stderr, "unknown protocol %q\n", *protoName)
		os.Exit(2)
	}

	cfg := litmus.Config{
		Protocol:   proto,
		Iterations: *iterations,
		Seed:       *seed,
		Jitter:     true,
		NoCrashes:  *noCrashes,
	}

	var bugs core.Bugs
	expectViolations := false
	tests := litmus.All()
	if *bug != "" {
		expectViolations = true
		switch *bug {
		case "complicit-abort":
			bugs = core.Bugs{ComplicitAbort: true}
			tests = []litmus.Test{litmus.Litmus1RMW()}
			cfg.NoCrashes = true
		case "missing-insert-log":
			bugs = core.Bugs{MissingInsertLog: true}
			cfg.Protocol = core.ProtocolFORD
			tests = []litmus.Test{litmus.Litmus1Insert()}
			cfg.CrashMidTx, cfg.CrashAfterTxs = 0.9, 0.01
		case "covert-locks":
			bugs = core.Bugs{CovertLocks: true}
			tests = []litmus.Test{litmus.Litmus2()}
			cfg.NoCrashes = true
		case "relaxed-locks":
			bugs = core.Bugs{RelaxedLocks: true}
			tests = []litmus.Test{litmus.Litmus2()}
			cfg.NoCrashes = true
		case "lost-decision":
			bugs = core.Bugs{LostDecision: true}
			cfg.Protocol = core.ProtocolFORD
			tests = []litmus.Test{litmus.Litmus3LostDecision()}
			cfg.Jitter = false
			cfg.CrashMidTx, cfg.CrashAfterTxs = 0.000001, 1.0
		case "log-without-lock":
			bugs = core.Bugs{LostDecision: true, LogWithoutLock: true}
			cfg.Protocol = core.ProtocolFORD
			tests = []litmus.Test{litmus.Litmus3LogWithoutLock()}
			cfg.Jitter = false
			cfg.CrashMidTx, cfg.CrashAfterTxs = 0.000001, 1.0
		default:
			fmt.Fprintf(os.Stderr, "unknown bug %q\n", *bug)
			os.Exit(2)
		}
		cfg.Bugs = bugs
	}

	totalViolations := 0
	for _, t := range tests {
		rep, err := litmus.RunTest(t, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", t.Name, err)
			os.Exit(1)
		}
		status := "PASS"
		if len(rep.Violations) > 0 {
			status = "VIOLATIONS"
		}
		fmt.Printf("%-28s %-11s iters=%d crashes=%d recoveries=%d C/A/?=%d/%d/%d violations=%d\n",
			rep.Test, status, rep.Iterations, rep.Crashes, rep.Recoveries,
			rep.Committed, rep.Aborted, rep.Unknown, len(rep.Violations))
		for i, v := range rep.Violations {
			if i >= 3 {
				fmt.Printf("    ... and %d more\n", len(rep.Violations)-3)
				break
			}
			fmt.Printf("    %s\n", v)
		}
		totalViolations += len(rep.Violations)
	}

	if expectViolations && totalViolations == 0 {
		fmt.Println("RESULT: seeded bug was NOT caught")
		os.Exit(1)
	}
	if !expectViolations && totalViolations > 0 {
		fmt.Println("RESULT: protocol FAILED validation")
		os.Exit(1)
	}
	if expectViolations {
		fmt.Printf("RESULT: seeded bug caught (%d violations)\n", totalViolations)
	} else {
		fmt.Println("RESULT: all litmus tests passed")
	}
}
