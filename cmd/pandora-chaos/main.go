// Command pandora-chaos runs the seeded chaos scenario engine from the
// command line:
//
//	pandora-chaos                        # mixed scenario, seed 42
//	pandora-chaos -scenario graylink     # link faults only
//	pandora-chaos -seed 7 -events 20     # longer run, different schedule
//	pandora-chaos -workload bank         # balance-conservation invariant
//	pandora-chaos -escalate              # FD suspicion escalation on
//	pandora-chaos -scenario reconfig -crash source
//	                                     # live resharding, crash the copy
//	                                     # source mid-migration, recover
//	pandora-chaos -scenario hotlock -crash waiter
//	                                     # adaptive ticket lanes: crash a
//	                                     # parked waiter, repair the lane
//	pandora-chaos -scenario commitpipe -crash middrain
//	                                     # async commit-back: die between
//	                                     # truncation and unlock, recover
//
// The deterministic event log goes to stdout: two runs with the same
// flags (escalation off) are byte-identical, which is how a chaos
// failure is reproduced from its seed. Wall-clock-dependent statistics
// go to stderr. Exit status is non-zero on invariant violations.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"pandora/internal/chaos"
)

func main() {
	seed := flag.Int64("seed", 42, "seed driving the fault schedule and workload")
	scenario := flag.String("scenario", "mixed", "fault palette: "+strings.Join(chaos.Scenarios(), ", ")+", reconfig, hotlock, commitpipe")
	crash := flag.String("crash", "coordinator", "reconfig: what dies mid-migration ("+strings.Join(chaos.ReconfigModes(), ", ")+"); hotlock: which lane participant dies ("+strings.Join(chaos.HotlockModes(), ", ")+"); commitpipe: where the post-ack tail dies ("+strings.Join(chaos.CommitPipeModes(), ", ")+")")
	workload := flag.String("workload", "counter", "workload: counter, bank")
	events := flag.Int("events", 12, "number of seed-drawn fault events")
	gap := flag.Duration("gap", 2*time.Millisecond, "wall-clock spacing between events")
	computes := flag.Int("computes", 3, "compute nodes")
	memories := flag.Int("memories", 3, "memory nodes")
	coords := flag.Int("coords", 2, "coordinators (= workers) per compute node")
	keys := flag.Int("keys", 48, "workload keys")
	timeout := flag.Duration("timeout", 500*time.Microsecond, "verb deadline on stalled/slow links")
	escalate := flag.Bool("escalate", false, "enable FD suspicion escalation (event log becomes best-effort)")
	metricsOut := flag.String("metrics", "", "write the run's observability snapshot (phase histograms, abort taxonomy, verb counters) as JSON to this file; the stdout event log stays untouched")
	flag.Parse()

	cfg := chaos.Config{
		Seed:         *seed,
		Scenario:     *scenario,
		Workload:     *workload,
		Events:       *events,
		Gap:          *gap,
		Computes:     *computes,
		Memories:     *memories,
		Coordinators: *coords,
		Keys:         *keys,
		VerbTimeout:  *timeout,
		Escalate:     *escalate,
		Logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	}
	var res *chaos.Result
	var err error
	if *scenario == "reconfig" {
		// The reconfiguration family has its own runner: one live
		// add-memory migration with a seeded crash, not a drawn schedule.
		res, err = chaos.RunReconfig(cfg, *crash)
	} else if *scenario == "hotlock" {
		// Fully scripted: a promoted ticket lane loses its holder or a
		// parked waiter at a seeded poll step and must be repaired.
		res, err = chaos.RunHotlock(cfg, *crash)
	} else if *scenario == "commitpipe" {
		// Fully scripted: an acknowledged commit's post-ack tail dies at
		// a chosen pipeline point; recovery (run twice) must heal it.
		res, err = chaos.RunCommitPipe(cfg, *crash)
	} else {
		res, err = chaos.Run(cfg)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "pandora-chaos: %v\n", err)
		os.Exit(2)
	}

	fmt.Fprintf(os.Stderr, "events=%d audits=%d acked=%d aborted=%d unknown=%d\n",
		res.Events, res.Audits, res.Acked, res.Aborted, res.Unknown)
	if *metricsOut != "" {
		// The snapshot counts a workload that races the schedule, so it is
		// diagnostic (not seed-reproducible) and kept off stdout.
		data, err := json.MarshalIndent(res.Metrics, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "pandora-chaos: metrics: %v\n", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*metricsOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "pandora-chaos: metrics: %v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "metrics written to %s\n", *metricsOut)
	}
	if n := len(res.Violations); n > 0 {
		fmt.Fprintf(os.Stderr, "RESULT: %d violation(s)\n", n)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "RESULT: no violations")
}
