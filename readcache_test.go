package pandora_test

// Validated-read-cache behaviour through the public API: hits serve
// locally, stale hits abort at validation and are invalidated, PILL
// lock steals drop the stolen key, recovery bumps the survivor's cache
// epoch, and a negative ReadCacheSize disables the cache entirely.

import (
	"bytes"
	"testing"

	pandora "pandora"
)

func TestReadCacheHitServesLocally(t *testing.T) {
	c := newLoaded(t, testConfig(), 64)
	s := c.Session(0, 0)

	if v := readValidated(t, s, "kv", 7); !bytes.Equal(v, u64(70)) {
		t.Fatalf("first read = %v", v)
	}
	before := c.ReadCacheStats(0, 0)
	if v := readValidated(t, s, "kv", 7); !bytes.Equal(v, u64(70)) {
		t.Fatalf("second read = %v", v)
	}
	after := c.ReadCacheStats(0, 0)
	if after.Hits <= before.Hits {
		t.Fatalf("second read did not hit the cache: %+v -> %+v", before, after)
	}
}

func TestReadCacheStaleHitAbortsThenRecovers(t *testing.T) {
	c := newLoaded(t, testConfig(), 64)
	a := c.Session(0, 0)
	b := c.Session(1, 0)

	// a caches key 3 at its loaded version.
	if v := readValidated(t, a, "kv", 3); !bytes.Equal(v, u64(30)) {
		t.Fatalf("warm read = %v", v)
	}
	// b moves the version on the fabric; a's cache does not see it.
	if err := b.Update(0, func(tx *pandora.Tx) error {
		return tx.Write("kv", 3, u64(333))
	}); err != nil {
		t.Fatal(err)
	}

	// a's next read serves the stale value; validation must reject the
	// commit and invalidate the entry.
	tx := a.Begin()
	v, err := tx.Read("kv", 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v, u64(30)) {
		// The cache may already have missed (e.g. eviction); then the
		// read is fresh and there is nothing left to assert.
		t.Skipf("read was not a stale hit (got %v)", v)
	}
	if cerr := tx.Commit(); !pandora.IsAborted(cerr) {
		t.Fatalf("stale-hit commit = %v, want validation abort", cerr)
	}
	if st := c.ReadCacheStats(0, 0); st.Invalidations == 0 {
		t.Fatalf("no invalidation recorded: %+v", st)
	}
	// The retry reads through and sees b's committed value.
	if v := readValidated(t, a, "kv", 3); !bytes.Equal(v, u64(333)) {
		t.Fatalf("post-abort read = %v, want 333", v)
	}
}

func TestReadCacheInvalidatedOnLockSteal(t *testing.T) {
	c := newLoaded(t, testConfig(), 64)
	stealer := c.Session(0, 0)
	victim := c.Session(1, 0)

	// The stealer caches key 5's pre-image.
	if v := readValidated(t, stealer, "kv", 5); !bytes.Equal(v, u64(50)) {
		t.Fatalf("warm read = %v", v)
	}

	// The victim locks key 5 and goes silent (tx abandoned, lock left).
	vtx := victim.Begin()
	if err := vtx.Write("kv", 5, u64(555)); err != nil {
		t.Fatal(err)
	}

	// Declare the victim's coordinator failed on the stealer's node
	// only — directly via the failed-ids bitset, so no recovery (and no
	// cache epoch bump) masks the per-key invalidation under test.
	c.Engine(0).FailedIDs().Set(victim.CoordinatorID())

	before := c.ReadCacheStats(0, 0)
	// The stealer's write finds the stray lock, steals it, and must
	// drop its cached entry for the key (recovery could have rewritten
	// the slot in the general case).
	if err := stealer.Update(0, func(tx *pandora.Tx) error {
		return tx.Write("kv", 5, u64(500))
	}); err != nil {
		t.Fatal(err)
	}
	after := c.ReadCacheStats(0, 0)
	if after.Invalidations <= before.Invalidations {
		t.Fatalf("steal did not invalidate the cached key: %+v -> %+v", before, after)
	}
	if v := readValidated(t, stealer, "kv", 5); !bytes.Equal(v, u64(500)) {
		t.Fatalf("post-steal read = %v, want 500", v)
	}
}

func TestReadCacheEpochBumpOnRecovery(t *testing.T) {
	c := newLoaded(t, testConfig(), 64)
	survivor := c.Session(1, 0)

	// The survivor caches key 9.
	if v := readValidated(t, survivor, "kv", 9); !bytes.Equal(v, u64(90)) {
		t.Fatalf("warm read = %v", v)
	}

	// Node 0 fails; recovery announces stray locks to the survivors,
	// which bumps their cache epochs (log recovery may have rolled
	// committed-looking writes back — every cached version predating
	// the announcement is suspect).
	if _, err := c.FailCompute(0); err != nil {
		t.Fatal(err)
	}

	before := c.ReadCacheStats(1, 0)
	if v := readValidated(t, survivor, "kv", 9); !bytes.Equal(v, u64(90)) {
		t.Fatalf("post-recovery read = %v", v)
	}
	after := c.ReadCacheStats(1, 0)
	if after.Misses <= before.Misses {
		t.Fatalf("post-recovery read hit a pre-epoch entry: %+v -> %+v", before, after)
	}
}

func TestReadCacheDisabledBaseline(t *testing.T) {
	cfg := testConfig()
	cfg.ReadCacheSize = -1
	c := newLoaded(t, cfg, 64)
	s := c.Session(0, 0)

	for i := 0; i < 3; i++ {
		if v := readValidated(t, s, "kv", 7); !bytes.Equal(v, u64(70)) {
			t.Fatalf("read %d = %v", i, v)
		}
	}
	if st := c.ReadCacheStats(0, 0); st != (pandora.CacheStats{}) {
		t.Fatalf("disabled cache has non-zero stats: %+v", st)
	}
}
