package pandora_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	pandora "pandora"
	"pandora/internal/conftest"
)

func testConfig() pandora.Config {
	return pandora.Config{
		Tables: []pandora.TableSpec{
			{Name: "kv", ValueSize: 16, Capacity: 4096},
		},
	}
}

func u64(v uint64) []byte {
	b := make([]byte, 16)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

// readValidated reads one key in a committed read-only transaction,
// retrying validation aborts: a stale read-cache hit is rejected (and
// invalidated) at commit, so the retry observes the committed state.
// The retry loop itself lives in conftest, shared with the chaos
// harness and the conformance suite.
func readValidated(t testing.TB, s *pandora.Session, table string, key pandora.Key) []byte {
	t.Helper()
	return conftest.MustRead(t, s, table, key)
}

func newLoaded(t testing.TB, cfg pandora.Config, n int) *pandora.Cluster {
	t.Helper()
	c, err := pandora.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if err := c.LoadN("kv", n, func(k pandora.Key) []byte { return u64(uint64(k) * 10) }); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestClusterQuickstart(t *testing.T) {
	c := newLoaded(t, testConfig(), 100)
	s := c.Session(0, 0)

	tx := s.Begin()
	v, err := tx.Read("kv", 7)
	if err != nil {
		t.Fatal(err)
	}
	if binary.LittleEndian.Uint64(v) != 70 {
		t.Fatalf("read %v", v)
	}
	if err := tx.Write("kv", 7, u64(71)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert("kv", 5000, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	tx = s.Begin()
	v, _ = tx.Read("kv", 7)
	if binary.LittleEndian.Uint64(v) != 71 {
		t.Fatalf("post-commit read %v", v)
	}
	v, err = tx.Read("kv", 5000)
	if err != nil || !bytes.HasPrefix(v, []byte("hello")) {
		t.Fatalf("insert read = (%q, %v)", v, err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownTable(t *testing.T) {
	c := newLoaded(t, testConfig(), 10)
	tx := c.Session(0, 0).Begin()
	if _, err := tx.Read("nope", 1); err == nil {
		t.Fatal("read of unknown table succeeded")
	}
	_ = tx.Abort()
	if err := c.Load("nope", nil); err == nil {
		t.Fatal("load of unknown table succeeded")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := pandora.New(pandora.Config{}); err == nil {
		t.Fatal("config without tables accepted")
	}
	cfg := testConfig()
	cfg.Replication = 5
	cfg.MemoryNodes = 2
	if _, err := pandora.New(cfg); err == nil {
		t.Fatal("replication > memory nodes accepted")
	}
	cfg = testConfig()
	cfg.Tables = append(cfg.Tables, pandora.TableSpec{Name: "kv", ValueSize: 8, Capacity: 8})
	if _, err := pandora.New(cfg); err == nil {
		t.Fatal("duplicate table accepted")
	}
}

func TestUpdateRetries(t *testing.T) {
	cfg := testConfig()
	cfg.CoordinatorsPerNode = 3
	c := newLoaded(t, cfg, 64)
	// One worker per coordinator: a Session is single-threaded.
	workers := c.ComputeNodes() * c.CoordinatorsPerNode()
	const increments = 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := c.Session(w%c.ComputeNodes(), w/c.ComputeNodes())
			for i := 0; i < increments; i++ {
				err := s.Update(1000, func(tx *pandora.Tx) error {
					v, err := tx.Read("kv", 1)
					if err != nil {
						return err
					}
					return tx.Write("kv", 1, u64(binary.LittleEndian.Uint64(v)+1))
				})
				if err != nil {
					t.Errorf("update: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	v := readValidated(t, c.Session(0, 0), "kv", 1)
	if got := binary.LittleEndian.Uint64(v); got != uint64(10+workers*increments) {
		t.Fatalf("counter = %d, want %d", got, 10+workers*increments)
	}
}

func TestFailComputeRecoversAndSurvivorsProceed(t *testing.T) {
	c := newLoaded(t, testConfig(), 256)

	// The victim locks keys then crashes mid-protocol via the engine's
	// injector (white-box access through Engine).
	victim := c.Engine(0)
	victimSess := c.Session(0, 0)
	crashed := false
	victim.SetInjector(nil)
	tx := victimSess.Begin()
	if err := tx.Write("kv", 1, u64(111)); err != nil {
		t.Fatal(err)
	}
	// Crash before commit: lock held, nothing logged.
	c.CrashCompute(0)
	if err := tx.Commit(); err == nil {
		t.Fatal("commit on crashed node succeeded")
	}
	crashed = true
	_ = crashed

	stats, err := c.FailCompute(0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.WallTime == 0 {
		t.Fatal("recovery did not run")
	}

	// Survivor steals and proceeds; old value intact.
	s := c.Session(1, 0)
	tx2 := s.Begin()
	v, err := tx2.Read("kv", 1)
	if err != nil {
		t.Fatalf("survivor read: %v", err)
	}
	if binary.LittleEndian.Uint64(v) != 10 {
		t.Fatalf("value corrupted by crashed tx: %v", v)
	}
	if err := tx2.Write("kv", 1, u64(222)); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestRestartComputeRejoins(t *testing.T) {
	c := newLoaded(t, testConfig(), 64)
	if _, err := c.FailCompute(0); err != nil {
		t.Fatal(err)
	}
	if err := c.RestartCompute(0); err != nil {
		t.Fatal(err)
	}
	// The restarted node has fresh coordinator-ids and can transact.
	s := c.Session(0, 0)
	if err := s.Update(10, func(tx *pandora.Tx) error {
		return tx.Write("kv", 2, u64(999))
	}); err != nil {
		t.Fatal(err)
	}
	// And sees the failed-ids state (its old ids are failed).
	tx := c.Session(1, 0).Begin()
	v, err := tx.Read("kv", 2)
	if err != nil || binary.LittleEndian.Uint64(v) != 999 {
		t.Fatalf("cross-node read after restart = (%v, %v)", v, err)
	}
	_ = tx.Commit()
}

func TestZombieFencedAtClusterLevel(t *testing.T) {
	c := newLoaded(t, testConfig(), 64)
	zombieSess := c.Session(0, 0)
	ztx := zombieSess.Begin()
	if err := ztx.Write("kv", 9, u64(666)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FailComputeSoft(0); err != nil {
		t.Fatal(err)
	}
	if err := ztx.Commit(); err == nil {
		t.Fatal("zombie committed after fencing")
	}
	tx := c.Session(1, 0).Begin()
	v, err := tx.Read("kv", 9)
	if err != nil || binary.LittleEndian.Uint64(v) != 90 {
		t.Fatalf("zombie corrupted data: (%v, %v)", v, err)
	}
	_ = tx.Commit()
}

func TestMemoryFailurePromotionAndRereplication(t *testing.T) {
	cfg := testConfig()
	cfg.MemoryNodes = 2
	cfg.Replication = 2
	c := newLoaded(t, cfg, 128)

	if err := c.FailMemory(0); err != nil {
		t.Fatal(err)
	}
	// All keys survive via promotion.
	s := c.Session(0, 0)
	for k := pandora.Key(0); k < 128; k++ {
		tx := s.Begin()
		v, err := tx.Read("kv", k)
		if err != nil {
			t.Fatalf("key %d after memory failure: %v", k, err)
		}
		if binary.LittleEndian.Uint64(v) != uint64(k)*10 {
			t.Fatalf("key %d corrupted: %v", k, v)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	// Restore redundancy, then lose the other original server.
	if _, err := c.Rereplicate(0); err != nil {
		t.Fatal(err)
	}
	if err := c.FailMemory(1); err != nil {
		t.Fatal(err)
	}
	tx := s.Begin()
	v, err := tx.Read("kv", 64)
	if err != nil || binary.LittleEndian.Uint64(v) != 640 {
		t.Fatalf("read from replacement = (%v, %v)", v, err)
	}
	if err := tx.Write("kv", 64, u64(1)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestLiveFDDetectsAndRecovers(t *testing.T) {
	cfg := testConfig()
	cfg.LiveFD = true
	cfg.FDTimeout = 20 * time.Millisecond
	c := newLoaded(t, cfg, 64)

	// Victim locks a key and silently dies.
	tx := c.Session(0, 0).Begin()
	if err := tx.Write("kv", 3, u64(1)); err != nil {
		t.Fatal(err)
	}
	c.CrashCompute(0)

	// The heartbeat timeout must detect it and recovery must free the
	// lock; the survivor eventually writes the key.
	s := c.Session(1, 0)
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := s.Update(0, func(tx *pandora.Tx) error {
			return tx.Write("kv", 3, u64(42))
		})
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("survivor still blocked after live detection window: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	st, err := c.LastRecovery(0)
	if err != nil {
		t.Fatal(err)
	}
	if st.WallTime == 0 {
		t.Fatal("no recovery stats recorded")
	}
}

func TestDistributedFDCluster(t *testing.T) {
	cfg := testConfig()
	cfg.FDReplicas = 3
	c := newLoaded(t, cfg, 64)
	tx := c.Session(0, 0).Begin()
	if err := tx.Write("kv", 5, u64(5)); err != nil {
		t.Fatal(err)
	}
	c.CrashCompute(0)
	_ = tx
	if _, err := c.FailCompute(0); err != nil {
		t.Fatal(err)
	}
	if err := c.Session(1, 0).Update(5, func(tx *pandora.Tx) error {
		return tx.Write("kv", 5, u64(50))
	}); err != nil {
		t.Fatal(err)
	}
}

func TestScanRecoveryCluster(t *testing.T) {
	cfg := testConfig()
	cfg.Protocol = pandora.ProtocolFORD
	cfg.DisablePILL = true
	cfg.ScanRecovery = true
	cfg.ModelLatency = true
	c := newLoaded(t, cfg, 64)

	tx := c.Session(0, 0).Begin()
	if err := tx.Write("kv", 8, u64(8)); err != nil {
		t.Fatal(err)
	}
	c.CrashCompute(0)
	stats, err := c.FailCompute(0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.VTime == 0 {
		t.Fatal("scan recovery charged no time")
	}
	if err := c.Session(1, 0).Update(5, func(tx *pandora.Tx) error {
		return tx.Write("kv", 8, u64(80))
	}); err != nil {
		t.Fatalf("survivor blocked after scan recovery: %v", err)
	}
}

func TestBankConservationAcrossComputeFailure(t *testing.T) {
	cfg := testConfig()
	cfg.ComputeNodes = 2
	cfg.CoordinatorsPerNode = 4
	c := newLoaded(t, cfg, 32) // initial balance k*10; total = 10*(31*32/2)
	var wantTotal uint64
	for k := 0; k < 32; k++ {
		wantTotal += uint64(k) * 10
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := c.Session(w%2, w/2%4)
			rng := uint64(w)*2654435761 + 12345
			next := func(n uint64) uint64 { rng = rng*6364136223846793005 + 1; return rng % n }
			for {
				select {
				case <-stop:
					return
				default:
				}
				from, to := pandora.Key(next(32)), pandora.Key(next(32))
				if from == to {
					continue
				}
				err := func() error {
					tx := s.Begin()
					fv, err := tx.Read("kv", from)
					if err != nil {
						return err
					}
					tv, err := tx.Read("kv", to)
					if err != nil {
						return err
					}
					f := binary.LittleEndian.Uint64(fv)
					g := binary.LittleEndian.Uint64(tv)
					amt := next(10)
					if f < amt {
						return tx.Abort()
					}
					if err := tx.Write("kv", from, u64(f-amt)); err != nil {
						return err
					}
					if err := tx.Write("kv", to, u64(g+amt)); err != nil {
						return err
					}
					return tx.Commit()
				}()
				if err != nil && !pandora.IsAborted(err) && !errors.Is(err, pandora.ErrTxDone) {
					// Crashed node workers stop here.
					return
				}
			}
		}(w)
	}

	time.Sleep(20 * time.Millisecond)
	if _, err := c.FailCompute(0); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()

	// The sweep session's read cache may hold entries made stale by the
	// other coordinators' transfers; a stale hit is rejected (and
	// invalidated) at commit, so retry validation aborts — the retry
	// reads the committed state.
	var total uint64
	s := c.Session(1, 0)
	for attempt := 0; ; attempt++ {
		total = 0
		tx := s.Begin()
		err := func() error {
			for k := pandora.Key(0); k < 32; k++ {
				v, err := tx.Read("kv", k)
				if err != nil {
					return err
				}
				total += binary.LittleEndian.Uint64(v)
			}
			return tx.Commit()
		}()
		if err == nil {
			break
		}
		_ = tx.Abort()
		if !pandora.IsAborted(err) || attempt >= 8 {
			t.Fatalf("conservation sweep (attempt %d): %v", attempt, err)
		}
	}
	if total != wantTotal {
		t.Fatalf("total = %d, want %d — recovery created or destroyed money", total, wantTotal)
	}
}

func TestRecycleCoordinatorIDsCluster(t *testing.T) {
	c := newLoaded(t, testConfig(), 64)
	tx := c.Session(0, 0).Begin()
	if err := tx.Write("kv", 11, u64(1)); err != nil {
		t.Fatal(err)
	}
	c.CrashCompute(0)
	// Deliberately skip normal recovery notification: use NoAutoRecover?
	// Simpler: fail and then also recycle; recycle must be a no-op for
	// already-released locks and the id space resets.
	if _, err := c.FailCompute(0); err != nil {
		t.Fatal(err)
	}
	released := c.RecycleCoordinatorIDs()
	_ = released // locks may already have been released by log recovery
	if c.Detector().UsedIDs() != 0 {
		t.Fatal("id space not reset after recycling")
	}
}

func ExampleCluster() {
	c, err := pandora.New(pandora.Config{
		Tables: []pandora.TableSpec{{Name: "accounts", ValueSize: 16, Capacity: 1000}},
	})
	if err != nil {
		panic(err)
	}
	defer c.Close()
	_ = c.LoadN("accounts", 10, func(k pandora.Key) []byte { return u64(100) })

	s := c.Session(0, 0)
	_ = s.Update(10, func(tx *pandora.Tx) error {
		v, err := tx.Read("accounts", 1)
		if err != nil {
			return err
		}
		return tx.Write("accounts", 1, u64(binary.LittleEndian.Uint64(v)+1))
	})
	tx := s.Begin()
	v, _ := tx.Read("accounts", 1)
	_ = tx.Commit()
	fmt.Println(binary.LittleEndian.Uint64(v))
	// Output: 101
}

func TestCheckConsistency(t *testing.T) {
	c := newLoaded(t, testConfig(), 200)
	rep, err := c.CheckConsistency("kv")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Keys != 200 || len(rep.DuplicateKeys) != 0 || len(rep.DivergentKeys) != 0 || rep.LockedSlots != 0 {
		t.Fatalf("fresh cluster consistency: %+v", rep)
	}
	if _, err := c.CheckConsistency("nope"); err == nil {
		t.Fatal("unknown table accepted")
	}

	// Mutations keep it consistent.
	s := c.Session(0, 0)
	for i := 0; i < 50; i++ {
		if err := s.Update(10, func(tx *pandora.Tx) error {
			return tx.Write("kv", pandora.Key(i%200), u64(uint64(i)))
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Update(5, func(tx *pandora.Tx) error { return tx.Delete("kv", 3) }); err != nil {
		t.Fatal(err)
	}
	if err := s.Update(5, func(tx *pandora.Tx) error { return tx.Insert("kv", 9999, []byte("new")) }); err != nil {
		t.Fatal(err)
	}
	rep, err = c.CheckConsistency("kv")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Keys != 200 || len(rep.DuplicateKeys) != 0 || len(rep.DivergentKeys) != 0 || rep.LockedSlots != 0 {
		t.Fatalf("post-mutation consistency: %+v", rep)
	}
}

func TestLossyTransportPreservesCorrectness(t *testing.T) {
	// §2.1's failure model: message loss and duplication are masked by
	// the reliable-connection transport. A full concurrent run plus a
	// compute failure behaves identically under 20% loss.
	cfg := testConfig()
	cfg.LossProb = 0.2
	cfg.DupProb = 0.1
	c := newLoaded(t, cfg, 64)

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := c.Session(w%2, w/2)
			for i := 0; i < 100; i++ {
				err := s.Update(50, func(tx *pandora.Tx) error {
					v, err := tx.Read("kv", 1)
					if err != nil {
						return err
					}
					return tx.Write("kv", 1, u64(binary.LittleEndian.Uint64(v)+1))
				})
				if err != nil && !errors.Is(err, pandora.ErrTxDone) {
					t.Errorf("update under loss: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	v := readValidated(t, c.Session(0, 0), "kv", 1)
	if got := binary.LittleEndian.Uint64(v); got != 10+400 {
		t.Fatalf("counter = %d under lossy transport, want 410", got)
	}
	if _, err := c.FailCompute(0); err != nil {
		t.Fatal(err)
	}
	if err := c.Session(1, 0).Update(10, func(tx *pandora.Tx) error {
		return tx.Write("kv", 2, u64(7))
	}); err != nil {
		t.Fatal(err)
	}
}
