package pandora_test

// testing.B entry points, one per table and figure of the paper's
// evaluation (§6). Each wraps the corresponding experiment in
// internal/bench at Quick scale; cmd/pandora-bench runs the same code
// at Full scale and EXPERIMENTS.md records a full run.
//
// These are experiment drivers, not micro-benchmarks: a single
// "iteration" is one full experiment, and the interesting output is the
// reported shape (printed via b.Log), not ns/op.

import (
	"testing"
	"time"

	pandora "pandora"
	"pandora/internal/bench"
)

func runOnce(b *testing.B, fn func() (interface{ String() string }, error)) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := fn()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + r.String())
		}
	}
}

// BenchmarkTable1Litmus regenerates Table 1: litmus validation of the
// fixed protocol plus detection of every seeded FORD bug.
func BenchmarkTable1Litmus(b *testing.B) {
	runOnce(b, func() (interface{ String() string }, error) { return bench.Table1(40) })
}

// BenchmarkTable2RecoveryLatency regenerates Table 2: Pandora recovery
// latency vs outstanding coordinators, per benchmark.
func BenchmarkTable2RecoveryLatency(b *testing.B) {
	runOnce(b, func() (interface{ String() string }, error) {
		return bench.Table2(bench.Quick(), pandora.ProtocolPandora)
	})
}

// BenchmarkTradLogRecoveryLatency regenerates the §6.1 comparison: the
// traditional lock-logging scheme's recovery latency (up to ~2× Pandora).
func BenchmarkTradLogRecoveryLatency(b *testing.B) {
	runOnce(b, func() (interface{ String() string }, error) {
		return bench.Table2(bench.Quick(), pandora.ProtocolTradLog)
	})
}

// BenchmarkBaselineScanRecovery regenerates the §6.1 baseline figure:
// stop-the-world scan recovery, ~seconds per million keys.
func BenchmarkBaselineScanRecovery(b *testing.B) {
	runOnce(b, func() (interface{ String() string }, error) {
		return bench.BaselineScan([]int{250_000, 1_000_000}), nil
	})
}

// BenchmarkTradLogSteadyState regenerates §6.2.1: the traditional
// scheme's steady-state overhead, growing with the write ratio.
func BenchmarkTradLogSteadyState(b *testing.B) {
	runOnce(b, func() (interface{ String() string }, error) {
		return bench.SteadyStateOverhead(bench.Quick(), 200)
	})
}

// BenchmarkFig6PILLSteadyState regenerates Figure 6: PILL vs no-PILL
// steady-state throughput.
func BenchmarkFig6PILLSteadyState(b *testing.B) {
	runOnce(b, func() (interface{ String() string }, error) { return bench.Fig6(bench.Quick()) })
}

// BenchmarkFig7MTTF regenerates Figure 7: steady-state throughput under
// decreasing mean time to failure.
func BenchmarkFig7MTTF(b *testing.B) {
	runOnce(b, func() (interface{ String() string }, error) {
		s := bench.Quick()
		return bench.Fig7(s, []time.Duration{s.Timeline / 4, s.Timeline / 8})
	})
}

func benchFailover(b *testing.B, name string, coords int) {
	runOnce(b, func() (interface{ String() string }, error) {
		return bench.Failover(bench.Quick(), name, coords)
	})
}

// BenchmarkFig8FailoverMicro regenerates Figure 8.
func BenchmarkFig8FailoverMicro(b *testing.B) { benchFailover(b, "micro", 0) }

// BenchmarkFig9FailoverSmallBank regenerates Figure 9.
func BenchmarkFig9FailoverSmallBank(b *testing.B) { benchFailover(b, "smallbank", 0) }

// BenchmarkFig10FailoverTATP regenerates Figure 10.
func BenchmarkFig10FailoverTATP(b *testing.B) { benchFailover(b, "tatp", 0) }

// BenchmarkFig11FailoverTPCC regenerates Figure 11.
func BenchmarkFig11FailoverTPCC(b *testing.B) { benchFailover(b, "tpcc", 0) }

// BenchmarkFig12FailoverLowContention regenerates Figure 12: SmallBank
// with half the coordinators.
func BenchmarkFig12FailoverLowContention(b *testing.B) {
	benchFailover(b, "smallbank", bench.Quick().Coordinators/2)
}

// BenchmarkFig13StallHot1K regenerates Figure 13: stall-path
// sensitivity with a small hot set.
func BenchmarkFig13StallHot1K(b *testing.B) {
	runOnce(b, func() (interface{ String() string }, error) {
		s := bench.Quick()
		s.Timeline = 1200 * time.Millisecond
		return bench.StallSensitivity(s, 64, s.Timeline/2)
	})
}

// BenchmarkFig14StallHot100K regenerates Figure 14: the same with a
// large hot set (gradual decline instead of collapse).
func BenchmarkFig14StallHot100K(b *testing.B) {
	runOnce(b, func() (interface{ String() string }, error) {
		s := bench.Quick()
		s.Timeline = 1200 * time.Millisecond
		return bench.StallSensitivity(s, s.Keys, s.Timeline/2)
	})
}

// BenchmarkDistributedFD regenerates the §6.4 distributed-FD result:
// end-to-end recovery under 20 ms with three FD replicas. The paper's
// 5 ms heartbeat timeout is tight for a loaded single-CPU host (Go
// scheduler pauses can false-positive the survivor), so environmental
// failures are retried.
func BenchmarkDistributedFD(b *testing.B) {
	runOnce(b, func() (interface{ String() string }, error) {
		var lastErr error
		for attempt := 0; attempt < 5; attempt++ {
			r, err := bench.DistributedFD(3, 5*time.Millisecond)
			if err == nil {
				return r, nil
			}
			lastErr = err
		}
		return nil, lastErr
	})
}

// BenchmarkCommitThroughput is a conventional micro-benchmark: committed
// transactions per second on the in-process fabric (not a paper figure;
// useful for tracking regressions in the engine itself).
func BenchmarkCommitThroughput(b *testing.B) {
	c, err := pandora.New(pandora.Config{
		Tables: []pandora.TableSpec{{Name: "kv", ValueSize: 40, Capacity: 100_000}},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if err := c.LoadN("kv", 100_000, func(pandora.Key) []byte { return make([]byte, 40) }); err != nil {
		b.Fatal(err)
	}
	s := c.Session(0, 0)
	buf := make([]byte, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := pandora.Key(i % 100_000)
		tx := s.Begin()
		if _, err := tx.Read("kv", k); err != nil {
			b.Fatal(err)
		}
		if err := tx.Write("kv", k, buf); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}
