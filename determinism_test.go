package pandora_test

import (
	"testing"
	"time"

	pandora "pandora"
)

// runSeededWorkload builds a faulty cluster (loss + duplication, fixed
// seed), runs a fixed serial transaction mix, and returns the
// coordinator's virtual-clock total.
func runSeededWorkload(t *testing.T) time.Duration {
	t.Helper()
	c, err := pandora.New(pandora.Config{
		ComputeNodes:        1,
		MemoryNodes:         3,
		Replication:         2,
		CoordinatorsPerNode: 1,
		ModelLatency:        true,
		LossProb:            0.05,
		DupProb:             0.02,
		Tables:              []pandora.TableSpec{{Name: "kv", ValueSize: 64, Capacity: 1024}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.LoadN("kv", 256, func(k pandora.Key) []byte {
		v := make([]byte, 64)
		v[0] = byte(k)
		return v
	}); err != nil {
		t.Fatal(err)
	}
	clk := c.AttachClock(0, 0)
	s := c.Session(0, 0)
	val := make([]byte, 64)
	for i := 0; i < 100; i++ {
		k := pandora.Key(i % 256)
		err := s.Update(10, func(tx *pandora.Tx) error {
			if _, err := tx.Read("kv", k); err != nil {
				return err
			}
			if err := tx.Write("kv", k, val); err != nil {
				return err
			}
			return tx.Write("kv", (k+13)%256, val)
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return clk.Now()
}

// TestVirtualTimeDeterministicUnderFaults: two identically configured
// clusters (same fault seed) running the same workload must accumulate
// bit-identical virtual time, even though the commit path now fans
// verbs out over worker goroutines and retransmits lost messages. This
// is the end-to-end version of the engine-level determinism test in
// internal/rdma.
func TestVirtualTimeDeterministicUnderFaults(t *testing.T) {
	d1 := runSeededWorkload(t)
	d2 := runSeededWorkload(t)
	if d1 != d2 {
		t.Fatalf("virtual time not reproducible across identical runs: %v vs %v", d1, d2)
	}
	if d1 == 0 {
		t.Fatal("workload charged no virtual time; determinism check is vacuous")
	}
}
