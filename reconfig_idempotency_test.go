package pandora

import (
	"bytes"
	"sync"
	"testing"

	"pandora/internal/metrics"
	"pandora/internal/reconfig"
)

// secondReconfigCoordinator builds an independent migration coordinator
// on its own fabric node — the "another live coordinator takes over the
// orphaned migration" case, mirroring secondManager — sharing the
// cluster's recovery manager, schema, peers and metrics registry.
func secondReconfigCoordinator(c *Cluster, node NodeID) *reconfig.Coordinator {
	return reconfig.NewCoordinator(reconfig.Config{
		Fabric:  c.fab,
		Schema:  c.schema,
		Mgr:     c.mgr,
		Peers:   c.reconfigPeers,
		Node:    node,
		Metrics: c.met,
	})
}

// interruptAddMemory starts an AddMemory migration and crashes the
// coordinator at the first firing of the given step, leaving the
// journal and any partition marks behind. It returns the new node's
// fabric id.
func interruptAddMemory(t *testing.T, c *Cluster, at reconfig.Step) NodeID {
	t.Helper()
	c.SetReconfigHook(func(ev ReconfigStep) error {
		if ev.Step == at {
			return ErrReconfigInterrupted
		}
		return nil
	})
	defer c.SetReconfigHook(nil)
	if _, err := c.AddMemory(); err == nil {
		t.Fatalf("AddMemory was not interrupted at %v", at)
	}
	st, err := c.ReconfigStatus()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Active {
		t.Fatalf("no active migration journaled after interrupt at %v", at)
	}
	return st.Subject
}

// TestMigrationRecoveryIdempotent mirrors TestRecoveryIdempotent for
// the migration journal: a coordinator crash mid-cutover is recovered
// once, then a SECOND full recovery pass from a second live coordinator
// must find the journal complete, do zero work, and leave the store
// byte-identical.
func TestMigrationRecoveryIdempotent(t *testing.T) {
	const keys = 32
	c, err := New(Config{
		ComputeNodes: 2,
		Tables:       []TableSpec{{Name: "kv", ValueSize: 16, Capacity: 1024}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.LoadN("kv", keys, func(k Key) []byte { return idemValue(uint64(k)) }); err != nil {
		t.Fatal(err)
	}

	// Crash the coordinator right after a cutover copy: the partition is
	// marked migrating, journaled cutover, but the new view is NOT
	// installed — the ambiguous window recovery must disambiguate.
	newID := interruptAddMemory(t, c, reconfig.StepCutoverCopied)

	// First recovery pass completes the migration.
	did, err := c.ReconfigRecover()
	if err != nil {
		t.Fatalf("first migration recovery: %v", err)
	}
	if !did {
		t.Fatal("first recovery pass found no orphaned migration")
	}
	st, err := c.ReconfigStatus()
	if err != nil {
		t.Fatal(err)
	}
	if st.Active || len(st.Remaining) != 0 {
		t.Fatalf("migration incomplete after recovery: %+v", st)
	}
	hosts := false
	for p := uint32(0); p < c.mgr.Ring().Partitions(); p++ {
		for _, n := range c.mgr.Ring().Replicas(p) {
			if n == newID {
				hosts = true
			}
		}
	}
	if !hosts {
		t.Fatal("recovered add-migration left the new node partition-less")
	}
	state1 := idemState(t, c, keys)

	// Second full pass, from a different live migration coordinator:
	// all no-ops, byte-identical state, clean metrics delta.
	before := c.MetricsSnapshot()
	rc2 := secondReconfigCoordinator(c, NodeID(920))
	did, err = rc2.Recover()
	if err != nil {
		t.Fatalf("second migration recovery: %v", err)
	}
	if did {
		t.Fatal("second recovery pass did work, want all no-ops")
	}
	state2 := idemState(t, c, keys)
	for k, v := range state1 {
		if !bytes.Equal(v, state2[k]) {
			t.Fatalf("key %d changed across the second pass: %x -> %x", k, v, state2[k])
		}
	}
	delta := c.MetricsSnapshot().Sub(before)
	for _, a := range delta.Aborts {
		if a.Count != 0 {
			t.Fatalf("second pass counted abort %s=%d, want 0", a.Reason, a.Count)
		}
	}
	for _, p := range delta.Phases {
		switch p.Phase {
		case metrics.PhaseMigrate.String():
			if p.Count != 0 {
				t.Fatalf("second pass recorded %d migrate samples, want 0", p.Count)
			}
		case metrics.PhaseLock.String(), metrics.PhaseLog.String():
			if p.Count != 0 {
				t.Fatalf("second pass recorded %s phase samples (%d), migration recovery must not lock/log", p.Phase, p.Count)
			}
		}
	}
}

// TestMigrationRecoveryInterleaved races two live coordinators over the
// same half-finished migration: every step re-reads the journal and the
// installed placement under the operation lock, so any interleaving
// must converge to one completed migration with a spotless audit.
func TestMigrationRecoveryInterleaved(t *testing.T) {
	const keys = 32
	c, err := New(Config{
		ComputeNodes: 2,
		Tables:       []TableSpec{{Name: "kv", ValueSize: 16, Capacity: 1024}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.LoadN("kv", keys, func(k Key) []byte { return idemValue(uint64(k)) }); err != nil {
		t.Fatal(err)
	}

	// Interrupt after the drain barrier: partitions are marked and the
	// racing recoveries must both unwind the marks and finish the copy.
	newID := interruptAddMemory(t, c, reconfig.StepMarked)

	rcs := []*reconfig.Coordinator{
		secondReconfigCoordinator(c, NodeID(921)),
		secondReconfigCoordinator(c, NodeID(922)),
	}
	var wg sync.WaitGroup
	errs := make([]error, len(rcs))
	for i, rc := range rcs {
		wg.Add(1)
		go func(i int, rc *reconfig.Coordinator) {
			defer wg.Done()
			_, errs[i] = rc.Recover()
		}(i, rc)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("interleaved migration recovery %d: %v", i, err)
		}
	}

	st, err := c.ReconfigStatus()
	if err != nil {
		t.Fatal(err)
	}
	if st.Active || len(st.Remaining) != 0 {
		t.Fatalf("migration incomplete after interleaved recovery: %+v", st)
	}
	ringHasNew := false
	for _, n := range c.mgr.Ring().Nodes() {
		if n == newID {
			ringHasNew = true
		}
	}
	if !ringHasNew {
		t.Fatal("final ring lost the added node")
	}
	state := idemState(t, c, keys)
	for k := Key(0); k < Key(keys); k++ {
		if got := state[k]; len(got) == 0 {
			t.Fatalf("key %d lost across interleaved recovery", k)
		}
	}
	rep, err := c.CheckConsistency("kv")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Keys != keys || len(rep.DuplicateKeys) > 0 || len(rep.DivergentKeys) > 0 || rep.LockedSlots != 0 {
		t.Fatalf("inconsistent after interleaved recovery: %+v", rep)
	}
}
