package pandora_test

// Chaos test: repeated compute-node crash/recover/restart cycles under a
// concurrent counter workload, with a per-key invariant that bounds the
// final state by the client-visible acknowledgements — the cluster-scale
// version of the litmus framework's Cor2/Cor3 checks.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	pandora "pandora"
	"pandora/internal/rdma"
)

func TestChaosCounterInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test skipped in -short mode")
	}
	const keys = 32
	cfg := pandora.Config{
		ComputeNodes:        2,
		CoordinatorsPerNode: 4,
		Tables:              []pandora.TableSpec{{Name: "ctr", ValueSize: 16, Capacity: keys}},
	}
	c, err := pandora.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.LoadN("ctr", keys, func(pandora.Key) []byte { return make([]byte, 16) }); err != nil {
		t.Fatal(err)
	}

	// Per-key acknowledgement accounting: acked increments MUST be in
	// the final value; unacked crashed increments MAY be.
	var acked, unknown [keys]atomic.Int64

	stop := make(chan struct{})
	var wg sync.WaitGroup
	worker := func(node, coord int, seed uint64) {
		defer wg.Done()
		s := c.Session(node, coord)
		rng := seed
		for {
			select {
			case <-stop:
				return
			default:
			}
			rng = rng*6364136223846793005 + 1442695040888963407
			k := pandora.Key(rng % keys)
			tx := s.Begin()
			v, err := tx.Read("ctr", k)
			if err == nil {
				buf := make([]byte, 16)
				binary.LittleEndian.PutUint64(buf, binary.LittleEndian.Uint64(v)+1)
				err = tx.Write("ctr", k, buf)
			}
			if err == nil {
				err = tx.Commit()
			} else if !tx.Done() {
				_ = tx.Abort()
			}
			switch {
			case err == nil || tx.CommitAcked():
				acked[k].Add(1)
			case errors.Is(err, rdma.ErrCrashed) || errors.Is(err, rdma.ErrRevoked):
				if !tx.AbortAcked() {
					unknown[k].Add(1)
				}
				return // worker dies with its node
			default:
				// aborted: no effect
			}
		}
	}
	spawn := func(node int, gen uint64) {
		for coord := 0; coord < cfg.CoordinatorsPerNode; coord++ {
			wg.Add(1)
			go worker(node, coord, gen*1000+uint64(node*10+coord)+1)
		}
	}
	spawn(0, 0)
	spawn(1, 0)

	// Crash / recover / restart node 0 repeatedly while node 1 churns.
	for cycle := 0; cycle < 5; cycle++ {
		time.Sleep(15 * time.Millisecond)
		if _, err := c.FailCompute(0); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		time.Sleep(5 * time.Millisecond)
		if err := c.RestartCompute(0); err != nil {
			t.Fatalf("cycle %d restart: %v", cycle, err)
		}
		spawn(0, uint64(cycle+2))
	}
	time.Sleep(15 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Audit from the survivor. The read-and-commit loop retries
	// validation aborts: stale read-cache entries are rejected (and
	// invalidated) at commit, and only a committed snapshot is judged.
	s := c.Session(1, 0)
	vals := make([]int64, keys)
	for attempt := 0; ; attempt++ {
		tx := s.Begin()
		var rerr error
		for k := pandora.Key(0); k < keys; k++ {
			v, err := tx.Read("ctr", k)
			if err != nil {
				rerr = fmt.Errorf("read %d: %w", k, err)
				break
			}
			vals[k] = int64(binary.LittleEndian.Uint64(v))
		}
		if rerr != nil {
			t.Fatal(rerr)
		}
		cerr := tx.Commit()
		if cerr == nil {
			break
		}
		if !pandora.IsAborted(cerr) || attempt >= 8 {
			t.Fatal(cerr)
		}
	}
	var totalAcked, totalVal int64
	for k := pandora.Key(0); k < keys; k++ {
		val := vals[k]
		lo := acked[k].Load()
		hi := lo + unknown[k].Load()
		if val < lo || val > hi {
			t.Errorf("key %d: value %d outside [acked=%d, acked+unknown=%d] — an acked increment was lost or an aborted one applied", k, val, lo, hi)
		}
		totalAcked += lo
		totalVal += val
	}
	if totalAcked == 0 {
		t.Fatal("chaos run committed nothing")
	}
	// Structural audit: no duplicate slots, byte-identical replicas, no
	// stray locks survive the crash/recover/restart cycles.
	rep, err := c.CheckConsistency("ctr")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.DuplicateKeys) != 0 || len(rep.DivergentKeys) != 0 || rep.LockedSlots != 0 {
		t.Fatalf("post-chaos structural damage: %+v", rep)
	}
	t.Logf("chaos: %d acked increments, final sum %d, 5 crash/restart cycles survived", totalAcked, totalVal)
}
