package pandora

import (
	"bytes"
	"encoding/binary"
	"testing"

	"pandora/internal/core"
	"pandora/internal/kvlayout"
	"pandora/internal/metrics"
)

func hotValue(v uint64) []byte {
	b := make([]byte, 16)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

// hotCluster builds a 2-compute cluster with the given hot-lock
// threshold and one preloaded table.
func hotCluster(t *testing.T, threshold int, noAutoRecover bool) *Cluster {
	t.Helper()
	c, err := New(Config{
		ComputeNodes:     2,
		HotlockThreshold: threshold,
		NoAutoRecover:    noAutoRecover,
		Tables:           []TableSpec{{Name: "kv", ValueSize: 16, Capacity: 1024}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.LoadN("kv", 32, func(k Key) []byte { return hotValue(uint64(k)) }); err != nil {
		c.Close()
		t.Fatal(err)
	}
	return c
}

// releaseAtSpin installs a DebugQueueWait hook that finishes the
// holder's transaction (commit) the first time `coord` polls for `key`
// at or past the given spin — the scripted release that makes queued
// hand-off reachable from a sequential test.
func releaseAtSpin(t *testing.T, coord kvlayout.CoordID, key Key, spin int, release func()) {
	t.Helper()
	done := false
	core.DebugQueueWait = func(c kvlayout.CoordID, k kvlayout.Key, s int) {
		if !done && c == coord && k == key && s >= spin {
			done = true
			release()
		}
	}
	t.Cleanup(func() { core.DebugQueueWait = nil })
}

// TestHotlockQueuedAcquire drives one contended episode end to end
// with threshold 1: the first conflict promotes the key, the second
// attempt joins the ticket lane, and the scripted release hands the
// lock over through one FAA + one CAS instead of a retry ladder.
func TestHotlockQueuedAcquire(t *testing.T) {
	c := hotCluster(t, 1, false)
	defer c.Close()
	const key = Key(7)

	holder := c.Session(1, 0)
	htx := holder.Begin()
	if err := htx.Write("kv", key, hotValue(100)); err != nil {
		t.Fatal(err)
	}

	waiter := c.Session(0, 0)
	releaseAtSpin(t, waiter.CoordinatorID(), key, 2, func() {
		if err := htx.Commit(); err != nil {
			t.Errorf("holder commit: %v", err)
		}
	})
	before := c.MetricsSnapshot()
	if err := waiter.Update(5, func(tx *Tx) error {
		return tx.Write("kv", key, hotValue(200))
	}); err != nil {
		t.Fatalf("queued update: %v", err)
	}

	d := c.MetricsSnapshot().Sub(before)
	if got := d.LockCount(metrics.LockPromotion); got != 1 {
		t.Errorf("promotions = %d, want 1", got)
	}
	if got := d.LockCount(metrics.LockQueuedAcquire); got != 1 {
		t.Errorf("queued acquires = %d, want 1", got)
	}
	if got := d.LockCount(metrics.LockRetry); got != 2 {
		t.Errorf("lock retries = %d, want 2 (promoting conflict + pre-queue CAS)", got)
	}
	if got := d.AbortCount(metrics.AbortLockConflict); got != 1 {
		t.Errorf("lock-conflict aborts = %d, want 1 (the promoting conflict only)", got)
	}
	if got := d.LockCount(metrics.LockQueueTimeout); got != 0 {
		t.Errorf("queue timeouts = %d, want 0", got)
	}

	// Read back from a cold coordinator (node 1's read cache still holds
	// the holder's overwritten version).
	rtx := c.Session(0, 1).Begin()
	v, err := rtx.Read("kv", key)
	if err != nil {
		t.Fatalf("readback read: %v", err)
	}
	if err := rtx.Commit(); err != nil {
		t.Fatalf("readback commit: %v", err)
	}
	if !bytes.Equal(v, hotValue(200)) {
		t.Fatalf("key %d = %x, want the waiter's write", key, v)
	}
}

// TestHotlockBaselineKnob pins the HotlockThreshold=-1 baseline: the
// identical episode burns the whole CAS-retry ladder, promotes
// nothing, and queues nothing — the behaviour BENCH_hotlock.json
// measures the queue against.
func TestHotlockBaselineKnob(t *testing.T) {
	c := hotCluster(t, -1, false)
	defer c.Close()
	const key = Key(7)

	holder := c.Session(1, 0)
	htx := holder.Begin()
	if err := htx.Write("kv", key, hotValue(100)); err != nil {
		t.Fatal(err)
	}
	before := c.MetricsSnapshot()
	waiter := c.Session(0, 0)
	err := waiter.Update(3, func(tx *Tx) error {
		return tx.Write("kv", key, hotValue(200))
	})
	if !IsAborted(err) {
		t.Fatalf("baseline update against a held lock: %v", err)
	}
	d := c.MetricsSnapshot().Sub(before)
	if got := d.LockCount(metrics.LockRetry); got != 4 {
		t.Errorf("lock retries = %d, want 4 (every attempt CAS-failed)", got)
	}
	if got := d.AbortCount(metrics.AbortLockConflict); got != 4 {
		t.Errorf("lock-conflict aborts = %d, want 4", got)
	}
	if d.LockCount(metrics.LockPromotion) != 0 || d.LockCount(metrics.LockQueuedAcquire) != 0 {
		t.Error("baseline must not promote or queue")
	}
	if err := htx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := waiter.Update(0, func(tx *Tx) error {
		return tx.Write("kv", key, hotValue(200))
	}); err != nil {
		t.Fatalf("post-release update: %v", err)
	}
}

// queuedHold promotes `key` for the session and leaves it holding the
// key's lock via a queued acquisition: holder conflicts once against
// blocker (promotion at threshold 1), then re-acquires through the
// lane while the hook releases the blocker. Returns the holder's open
// transaction.
func queuedHold(t *testing.T, c *Cluster, holder, blocker *Session, key Key) *Tx {
	t.Helper()
	btx := blocker.Begin()
	if err := btx.Write("kv", key, hotValue(1)); err != nil {
		t.Fatal(err)
	}
	if err := holder.Update(0, func(tx *Tx) error {
		return tx.Write("kv", key, hotValue(2))
	}); !IsAborted(err) {
		t.Fatalf("promoting conflict: %v", err)
	}
	releaseAtSpin(t, holder.CoordinatorID(), key, 1, func() {
		if err := btx.Commit(); err != nil {
			t.Errorf("blocker commit: %v", err)
		}
	})
	htx := holder.Begin()
	if err := htx.Write("kv", key, hotValue(3)); err != nil {
		t.Fatalf("queued hold: %v", err)
	}
	core.DebugQueueWait = nil
	return htx
}

// TestHotlockStealRepairsLane crashes a compute node whose coordinator
// holds a queued lock (ticket taken, head advance owed) without any
// log record, so PILL stealing — not recovery — reclaims the word. The
// stealer must settle the dead holder's lane debt, or the next queued
// waiter would wedge until its budget expired.
func TestHotlockStealRepairsLane(t *testing.T) {
	c := hotCluster(t, 1, false)
	defer c.Close()
	const key = Key(9)

	holder := c.Session(1, 0)
	blocker := c.Session(0, 0)
	_ = queuedHold(t, c, holder, blocker, key)

	// Crash the holder's node mid-transaction: the lock word is strewn
	// (stray), the lane shows tail ahead of head.
	if _, err := c.FailCompute(1); err != nil {
		t.Fatal(err)
	}

	before := c.MetricsSnapshot()
	if err := blocker.Update(2, func(tx *Tx) error {
		return tx.Write("kv", key, hotValue(4))
	}); err != nil {
		t.Fatalf("steal update: %v", err)
	}
	d := c.MetricsSnapshot().Sub(before)
	if got := d.LockCount(metrics.LockTicketRepair); got != 1 {
		t.Errorf("ticket repairs = %d, want 1 (the dead holder's debt)", got)
	}

	// The lane must be fully live again: run another queued episode over
	// the same key from the surviving node's two coordinators.
	w2 := c.Session(0, 1)
	btx := w2.Begin()
	if err := btx.Write("kv", key, hotValue(5)); err != nil {
		t.Fatal(err)
	}
	releaseAtSpin(t, blocker.CoordinatorID(), key, 2, func() {
		if err := btx.Commit(); err != nil {
			t.Errorf("second blocker commit: %v", err)
		}
	})
	before = c.MetricsSnapshot()
	if err := blocker.Update(5, func(tx *Tx) error {
		return tx.Write("kv", key, hotValue(6))
	}); err != nil {
		t.Fatalf("post-repair queued update: %v", err)
	}
	d = c.MetricsSnapshot().Sub(before)
	if got := d.LockCount(metrics.LockQueuedAcquire); got != 1 {
		t.Errorf("post-repair queued acquires = %d, want 1", got)
	}
	if got := d.LockCount(metrics.LockQueueTimeout); got != 0 {
		t.Errorf("post-repair queue timeouts = %d, want 0 — the lane wedged", got)
	}
}

// TestHotlockRecoveryRepairsLane crashes a queued holder after it
// logged (PointAfterLog), so §3.2.2 recovery rolls the transaction
// back and releases its lock: the release must also settle the lane
// debt, and a second full recovery pass must stay a no-op (the repair
// is guarded by the release CAS, preserving §3.2.3 idempotence).
func TestHotlockRecoveryRepairsLane(t *testing.T) {
	c := hotCluster(t, 1, true)
	defer c.Close()
	const key = Key(5)

	holder := c.Session(0, 0)
	blocker := c.Session(1, 0)
	htx := queuedHold(t, c, holder, blocker, key)

	victim := c.Engine(0)
	victim.SetInjector(func(_ kvlayout.CoordID, p core.CrashPoint) bool {
		return p == core.PointAfterLog
	})
	_ = htx.Commit() // crashes post-logging, lock held, lane debt unpaid
	if htx.CommitAcked() {
		t.Fatal("crashed transaction must not be commit-acked")
	}
	ev, ok := c.fd.MarkFailed(victim.ID())
	if !ok {
		t.Fatal("node 0 already marked failed")
	}

	before := c.MetricsSnapshot()
	stats, err := c.mgr.RecoverCompute(ev)
	if err != nil {
		t.Fatal(err)
	}
	if stats.LoggedTxs != 1 {
		t.Fatalf("recovery stats: %+v, want 1 logged tx", stats)
	}
	d := c.MetricsSnapshot().Sub(before)
	if got := d.LockCount(metrics.LockTicketRepair); got != 1 {
		t.Errorf("recovery ticket repairs = %d, want 1", got)
	}

	// Idempotence: a second full pass from an independent coordinator
	// releases nothing, so it must repair nothing.
	before = c.MetricsSnapshot()
	stats2, err := secondManager(c).RecoverCompute(ev)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.LoggedTxs != 0 || stats2.RolledBack != 0 || stats2.RolledForward != 0 {
		t.Fatalf("second pass did work: %+v", stats2)
	}
	d = c.MetricsSnapshot().Sub(before)
	if got := d.LockCount(metrics.LockTicketRepair); got != 0 {
		t.Errorf("second pass repaired %d lanes, want 0", got)
	}

	// The key is writable again from the survivor and the lane is clean.
	if err := blocker.Update(2, func(tx *Tx) error {
		return tx.Write("kv", key, hotValue(7))
	}); err != nil {
		t.Fatalf("post-recovery update: %v", err)
	}
}
