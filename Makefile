# Mirrors .github/workflows/ci.yml so every CI gate runs locally with
# one command. `make lint` is the static-analysis gate: stock go vet,
# the analyzer unit tests under -race, the pandora-vet
# protocol-invariant suite (tools/analyzers) through both the vet
# driver and its standalone -json loader (report left in
# bin/pandora-vet.json), and — when installed — staticcheck and
# govulncheck.

GO      ?= go
BIN     := bin
VETTOOL := $(BIN)/pandora-vet

.PHONY: all build lint test bench-smoke chaos-smoke proptest soak clean

all: build lint test

build:
	$(GO) build ./...

$(VETTOOL): $(wildcard cmd/pandora-vet/*.go tools/analyzers/*.go)
	$(GO) build -o $(VETTOOL) ./cmd/pandora-vet

lint: $(VETTOOL)
	$(GO) vet ./...
	$(GO) test -race ./tools/analyzers/
	$(GO) vet -vettool=$(abspath $(VETTOOL)) ./...
	$(VETTOOL) -json ./... > $(BIN)/pandora-vet.json
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "staticcheck not installed; skipping (CI runs it)"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; \
	else echo "govulncheck not installed; skipping (CI runs it)"; fi

test:
	$(GO) test -race ./...

bench-smoke:
	$(GO) test -race -run '^$$' -bench . -benchtime 100x ./internal/rdma/
	$(GO) test -run 'TestHitPathZeroAlloc' ./internal/cache/
	$(GO) test -race ./internal/metrics/
	$(GO) test -run 'ZeroAlloc' ./internal/metrics/ ./internal/rdma/
	$(GO) run ./cmd/pandora-bench -experiment readcache -quick -json $(BIN)/BENCH_readcache.json -metrics $(BIN)/BENCH_metrics.json
	# Hot-lock lane: the quick run regenerates the artifact, which must
	# match the checked-in bin/BENCH_hotlock.json byte for byte (the pass
	# is sequential on a virtual clock, so the JSON is seed-deterministic).
	$(GO) run ./cmd/pandora-bench -experiment hotlock -quick -json $(BIN)/BENCH_hotlock.gen.json
	cmp $(BIN)/BENCH_hotlock.gen.json $(BIN)/BENCH_hotlock.json
	# Commit-tail lane: the pipelined commit tail experiment (legacy vs
	# fused vs async rounds-per-commit and ack latency) is sequential on a
	# virtual clock; its artifact must match bin/BENCH_commitpipe.json.
	$(GO) run ./cmd/pandora-bench -experiment commitpipe -quick -json $(BIN)/BENCH_commitpipe.gen.json
	cmp $(BIN)/BENCH_commitpipe.gen.json $(BIN)/BENCH_commitpipe.json

# Property-based litmus lane: the proptest engine's own tests, then the
# randomized multi-tx histories across the knob matrix (seeded corpus,
# byte-identical across runs; failures shrink and drop a repro file in
# bin/proptest-repro-*.json replayable with -replay).
proptest:
	$(GO) test -race ./internal/proptest/
	$(GO) test -race -run 'TestRandom|TestShrink|TestReplay' ./internal/litmus/

# Soak lane: deterministic mixed-tenant endurance run (TATP + SmallBank,
# fault schedule, tuned knobs). The quick run regenerates the artifact,
# which must match the checked-in bin/BENCH_soak.json byte for byte.
soak:
	$(GO) test -race -run 'TestSoak' ./internal/bench/
	$(GO) run ./cmd/pandora-bench -experiment soak -quick -json $(BIN)/BENCH_soak.gen.json
	cmp $(BIN)/BENCH_soak.gen.json $(BIN)/BENCH_soak.json

chaos-smoke:
	$(GO) test -race -short ./internal/chaos/
	$(GO) run ./cmd/pandora-chaos -seed 42 -events 8 >$(BIN)/a.log
	$(GO) run ./cmd/pandora-chaos -seed 42 -events 8 >$(BIN)/b.log
	cmp $(BIN)/a.log $(BIN)/b.log
	# Reconfiguration lane: 3 seeds × {coordinator, source, destination}
	# crash points, each run twice and byte-compared (crash point and
	# event log are pure functions of the seed). The last run leaves the
	# observability snapshot in $(BIN)/RECONFIG_metrics.json.
	for crash in coordinator source destination; do \
	  for seed in 1 7 42; do \
	    $(GO) run ./cmd/pandora-chaos -scenario reconfig -crash $$crash -seed $$seed \
	      -metrics $(BIN)/RECONFIG_metrics.json >$(BIN)/r-a.log || exit 1; \
	    $(GO) run ./cmd/pandora-chaos -scenario reconfig -crash $$crash -seed $$seed \
	      >$(BIN)/r-b.log || exit 1; \
	    cmp $(BIN)/r-a.log $(BIN)/r-b.log || exit 1; \
	  done; \
	done
	# Hot-lock lane: 3 seeds × {holder, waiter} crashes of a promoted
	# ticket lane, each run twice and byte-compared (the scenario is
	# fully scripted, so the event log is a pure function of the seed).
	for crash in holder waiter; do \
	  for seed in 1 7 42; do \
	    $(GO) run ./cmd/pandora-chaos -scenario hotlock -crash $$crash -seed $$seed \
	      >$(BIN)/h-a.log || exit 1; \
	    $(GO) run ./cmd/pandora-chaos -scenario hotlock -crash $$crash -seed $$seed \
	      >$(BIN)/h-b.log || exit 1; \
	    cmp $(BIN)/h-a.log $(BIN)/h-b.log || exit 1; \
	  done; \
	done
	# Commit-pipe lane: 3 seeds × {afterack, middrain, drainfail} crashes
	# of the async commit-back tail, each run twice and byte-compared,
	# with a double recovery pass (the second must be a no-op) inside
	# every run.
	for crash in afterack middrain drainfail; do \
	  for seed in 1 7 42; do \
	    $(GO) run ./cmd/pandora-chaos -scenario commitpipe -crash $$crash -seed $$seed \
	      >$(BIN)/c-a.log || exit 1; \
	    $(GO) run ./cmd/pandora-chaos -scenario commitpipe -crash $$crash -seed $$seed \
	      >$(BIN)/c-b.log || exit 1; \
	    cmp $(BIN)/c-a.log $(BIN)/c-b.log || exit 1; \
	  done; \
	done

clean:
	rm -rf $(BIN)
