package pandora_test

import (
	"testing"

	pandora "pandora"
)

// BenchmarkCommitE2E measures the full transaction commit path — lock
// acquisition, validation, log write, replicated apply, unlock — for a
// small read-modify-write transaction (1 read + 2 writes, replication 2)
// on a warm address cache. This is the wall-clock hot path the pooled
// OpBatch and the parallel queue-pair engine target; allocs/op is the
// headline number alongside ns/op.
func BenchmarkCommitE2E(b *testing.B) {
	c, err := pandora.New(pandora.Config{
		ComputeNodes:        1,
		MemoryNodes:         3,
		Replication:         2,
		CoordinatorsPerNode: 1,
		Tables:              []pandora.TableSpec{{Name: "kv", ValueSize: 64, Capacity: 2048}},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if err := c.LoadN("kv", 1024, func(pandora.Key) []byte { return make([]byte, 64) }); err != nil {
		b.Fatal(err)
	}
	s := c.Session(0, 0)
	val := make([]byte, 64)
	// Warm address cache.
	if err := s.Update(5, func(tx *pandora.Tx) error { return tx.Write("kv", 1, val) }); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := pandora.Key(i % 1024)
		err := s.Update(5, func(tx *pandora.Tx) error {
			if _, err := tx.Read("kv", k); err != nil {
				return err
			}
			if err := tx.Write("kv", k, val); err != nil {
				return err
			}
			return tx.Write("kv", (k+7)%1024, val)
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
