package pandora_test

// NVM persistence (§7): with Config.Persistence, acknowledged commits
// survive a memory server's power failure; without flushing, volatile
// writes are lost — exactly the split the selective one-sided flush
// scheme exists to close.

import (
	"bytes"
	"testing"

	pandora "pandora"
)

func persistCfg() pandora.Config {
	return pandora.Config{
		// One replica so a single power failure exercises durability
		// directly (with f+1 replicas a power failure is first masked by
		// promotion, which the memory-failure tests already cover).
		MemoryNodes: 1,
		Replication: 1,
		Persistence: true,
		Tables:      []pandora.TableSpec{{Name: "kv", ValueSize: 16, Capacity: 1024}},
	}
}

func TestPersistenceCommitsSurvivePowerFailure(t *testing.T) {
	c, err := pandora.New(persistCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.LoadN("kv", 100, func(pandora.Key) []byte { return []byte("preloaded-value!") }); err != nil {
		t.Fatal(err)
	}
	s := c.Session(0, 0)

	// Acknowledged writes and an insert.
	if err := s.Update(5, func(tx *pandora.Tx) error { return tx.Write("kv", 7, []byte("durable-write")) }); err != nil {
		t.Fatal(err)
	}
	if err := s.Update(5, func(tx *pandora.Tx) error { return tx.Insert("kv", 500, []byte("durable-insert")) }); err != nil {
		t.Fatal(err)
	}
	if err := s.Update(5, func(tx *pandora.Tx) error { return tx.Delete("kv", 9) }); err != nil {
		t.Fatal(err)
	}

	// Power failure + restart: the node serves its durable NVM image.
	if err := c.PowerFailMemory(0); err != nil {
		t.Fatal(err)
	}
	if err := c.RestartMemory(0); err != nil {
		t.Fatal(err)
	}

	tx := s.Begin()
	v, err := tx.Read("kv", 7)
	if err != nil {
		t.Fatalf("acknowledged write lost to power failure: %v", err)
	}
	if !bytes.HasPrefix(v, []byte("durable-write")) {
		t.Fatalf("key 7 = %q after power failure", v)
	}
	v, err = tx.Read("kv", 500)
	if err != nil || !bytes.HasPrefix(v, []byte("durable-insert")) {
		t.Fatalf("insert after power failure = (%q, %v)", v, err)
	}
	if _, err := tx.Read("kv", 9); err == nil {
		t.Fatal("acknowledged delete lost to power failure")
	}
	// Untouched keys keep their preloaded values.
	v, err = tx.Read("kv", 50)
	if err != nil || !bytes.HasPrefix(v, []byte("preloaded-value!")) {
		t.Fatalf("preloaded key after power failure = (%q, %v)", v, err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestWithoutFlushVolatileWritesAreLost(t *testing.T) {
	// Control experiment: persistence modelled on the fabric but the
	// commit path does not flush (battery-less DRAM without the §7
	// scheme) — a power failure reverts to the last durable state.
	cfg := persistCfg()
	c, err := pandora.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.LoadN("kv", 100, func(pandora.Key) []byte { return []byte("preloaded-value!") }); err != nil {
		t.Fatal(err)
	}
	// Disable commit flushing on the engine (white-box via Engine).
	// This models running a non-persistent protocol on NVM hardware.
	for i := 0; i < c.ComputeNodes(); i++ {
		c.Engine(i).SetPersist(false)
	}
	s := c.Session(0, 0)
	if err := s.Update(5, func(tx *pandora.Tx) error { return tx.Write("kv", 7, []byte("volatile")) }); err != nil {
		t.Fatal(err)
	}
	if err := c.PowerFailMemory(0); err != nil {
		t.Fatal(err)
	}
	if err := c.RestartMemory(0); err != nil {
		t.Fatal(err)
	}

	tx := s.Begin()
	v, err := tx.Read("kv", 7)
	if err != nil {
		t.Fatal(err)
	}
	_ = tx.Commit()
	if !bytes.HasPrefix(v, []byte("preloaded-value!")) {
		t.Fatalf("un-flushed write survived a power failure: %q", v)
	}
}

func TestPersistenceFlushCostIsVisible(t *testing.T) {
	// The flush round trips must show up in modelled time: a persistent
	// commit costs more virtual time than a volatile one.
	cost := func(persist bool) int64 {
		cfg := persistCfg()
		cfg.ModelLatency = true
		c, err := pandora.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if err := c.LoadN("kv", 16, func(pandora.Key) []byte { return make([]byte, 16) }); err != nil {
			t.Fatal(err)
		}
		if !persist {
			c.Engine(0).SetPersist(false)
		}
		clk := c.AttachClock(0, 0)
		s := c.Session(0, 0)
		// Warm the address cache.
		if err := s.Update(5, func(tx *pandora.Tx) error { return tx.Write("kv", 1, []byte("w")) }); err != nil {
			t.Fatal(err)
		}
		clk.Reset()
		if err := s.Update(5, func(tx *pandora.Tx) error { return tx.Write("kv", 1, []byte("w")) }); err != nil {
			t.Fatal(err)
		}
		return int64(clk.Now())
	}
	with := cost(true)
	without := cost(false)
	if with <= without {
		t.Fatalf("persistent commit (%d ns) not costlier than volatile (%d ns)", with, without)
	}
}
