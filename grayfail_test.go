package pandora_test

import (
	"encoding/binary"
	"testing"
	"time"

	pandora "pandora"
	"pandora/internal/rdma"
)

// TestSoftFailMidCommitLosesNothing: a false-positive failure
// declaration lands while the victim's commit is parked between
// validation and logging. The fenced zombie must not acknowledge, its
// write must not reach memory (no partial or double application), and a
// survivor must be able to steal the stray lock and proceed.
func TestSoftFailMidCommitLosesNothing(t *testing.T) {
	c := newLoaded(t, testConfig(), 64)
	victim := c.Engine(0)
	sess := c.Session(0, 0)

	entered := make(chan struct{})
	hold := make(chan struct{})
	victim.SetPostValidateDelay(func() {
		close(entered)
		<-hold
	})
	defer victim.SetPostValidateDelay(nil)

	type outcome struct {
		tx  *pandora.Tx
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		tx := sess.Begin()
		if err := tx.Write("kv", 7, u64(777)); err != nil {
			done <- outcome{tx, err}
			return
		}
		done <- outcome{tx, tx.Commit()}
	}()

	<-entered
	// The FD falsely declares the node failed; recovery fences the
	// zombie (Cor1) before touching state, then returns.
	if _, err := c.FailComputeSoft(0); err != nil {
		t.Fatal(err)
	}
	close(hold)
	res := <-done
	if res.err == nil || res.tx.CommitAcked() {
		t.Fatalf("zombie commit: err=%v acked=%v — a fenced coordinator acknowledged", res.err, res.tx.CommitAcked())
	}

	// The in-flight write must have had no effect.
	surv := c.Session(1, 0)
	tx := surv.Begin()
	v, err := tx.Read("kv", 7)
	if err != nil {
		t.Fatalf("survivor read: %v", err)
	}
	if got := binary.LittleEndian.Uint64(v); got != 70 {
		t.Fatalf("key 7 = %d after fenced mid-commit failure, want 70", got)
	}
	// The survivor steals the zombie's stray lock (PILL) and commits.
	if err := tx.Write("kv", 7, u64(222)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("survivor commit over stray lock: %v", err)
	}

	rep, err := c.CheckConsistency("kv")
	if err != nil {
		t.Fatal(err)
	}
	if rep.LockedSlots != 0 || len(rep.DivergentKeys) != 0 || len(rep.DuplicateKeys) != 0 {
		t.Fatalf("store not clean after soft-fail mid-commit: %+v", rep)
	}
}

// TestSoftFailAfterAckPreservesCommit: the dual direction — a write
// acknowledged BEFORE the false declaration must survive recovery
// unchanged (Cor3: never roll back a commit-acked transaction).
func TestSoftFailAfterAckPreservesCommit(t *testing.T) {
	c := newLoaded(t, testConfig(), 64)
	if err := c.Session(0, 0).Update(10, func(tx *pandora.Tx) error {
		return tx.Write("kv", 3, u64(333))
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FailComputeSoft(0); err != nil {
		t.Fatal(err)
	}
	tx := c.Session(1, 0).Begin()
	v, err := tx.Read("kv", 3)
	if err != nil {
		t.Fatal(err)
	}
	_ = tx.Commit()
	if got := binary.LittleEndian.Uint64(v); got != 333 {
		t.Fatalf("acked write lost by recovery: key 3 = %d, want 333", got)
	}
}

// TestStallLinkMidCommitEscalates: the tentpole gray-failure story end
// to end. A stalled compute→memory link makes verbs time out instead of
// wedging their coordinators; the aborted transactions report the
// suspect memory node, the FD escalates at the threshold and fails it,
// promotion moves primaries to the surviving replica, and the workload
// completes. After healing and re-replication the store is consistent.
func TestStallLinkMidCommitEscalates(t *testing.T) {
	cfg := testConfig()
	cfg.VerbTimeout = 200 * time.Microsecond
	cfg.SuspectThreshold = 2
	c := newLoaded(t, cfg, 64)

	c.StallLink(0, 0)
	s := c.Session(0, 0)
	for k := pandora.Key(0); k < 64; k++ {
		k := k
		// Keys whose primary lives on the stalled memory node abort with
		// verb timeouts until escalation fences it; the retry loop (with
		// link-fault backoff) must always come out the other side.
		if err := s.Update(10000, func(tx *pandora.Tx) error {
			return tx.Write("kv", k, u64(uint64(k)+1000))
		}); err != nil {
			t.Fatalf("key %d never committed through the stalled link: %v", k, err)
		}
	}

	st := c.LinkStats()
	if st.StalledVerbs == 0 || st.Timeouts == 0 {
		t.Fatalf("stall never engaged: %+v", st)
	}
	if got := c.Detector().Suspicions(rdma.NodeID(0)); got != 0 {
		t.Fatalf("suspicions counted against a compute node: %d", got)
	}

	c.HealAllLinks()
	if _, err := c.Rereplicate(0); err != nil {
		t.Fatalf("re-replication of the escalated memory node: %v", err)
	}

	rep, err := c.CheckConsistency("kv")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Keys != 64 || rep.LockedSlots != 0 || len(rep.DivergentKeys) != 0 || len(rep.DuplicateKeys) != 0 {
		t.Fatalf("store inconsistent after stall+escalation+rereplication: %+v", rep)
	}
	tx := c.Session(1, 0).Begin()
	for k := pandora.Key(0); k < 64; k++ {
		v, err := tx.Read("kv", k)
		if err != nil {
			t.Fatalf("read %d: %v", k, err)
		}
		if got := binary.LittleEndian.Uint64(v); got != uint64(k)+1000 {
			t.Fatalf("key %d = %d, want %d", k, got, uint64(k)+1000)
		}
	}
	_ = tx.Commit()
}
