package pandora_test

import (
	"testing"

	pandora "pandora"
)

// TestAbortTaxonomy forces each typed abort reason through the public
// fault surface, one sub-test per reason, and asserts exactly that
// counter increments — no cross-talk between reasons, and the error's
// AbortKindOf classification agrees with the counter.
func TestAbortTaxonomy(t *testing.T) {
	cases := []struct {
		name string
		kind pandora.AbortKind
		cfg  func(*pandora.Config)
		// errless marks scenarios that count an abort without surfacing
		// an error (a clean user Abort returns nil).
		errless bool
		// run performs the aborting operation and returns its error.
		// The cluster has keys 0..31 preloaded in table "kv".
		run func(t *testing.T, c *pandora.Cluster) error
	}{
		{
			name: "validation-version",
			kind: pandora.AbortValidationVersion,
			cfg:  func(cfg *pandora.Config) { cfg.ReadCacheSize = -1 }, // fabric reads only
			run: func(t *testing.T, c *pandora.Cluster) error {
				stale := c.Session(0, 0).Begin()
				if _, err := stale.Read("kv", 3); err != nil {
					t.Fatalf("stale read: %v", err)
				}
				mv := c.Session(1, 0).Begin()
				if err := mv.Write("kv", 3, u64(99)); err != nil {
					t.Fatalf("move write: %v", err)
				}
				if err := mv.Commit(); err != nil {
					t.Fatalf("move commit: %v", err)
				}
				return stale.Commit()
			},
		},
		{
			name: "cache-stale",
			kind: pandora.AbortCacheStale,
			cfg:  nil, // cache on (default size)
			run: func(t *testing.T, c *pandora.Cluster) error {
				// Warm key 3 into node 0's coordinator cache with a
				// committed read, move the version from node 1, then
				// commit against the now-stale cache hit.
				warm := c.Session(0, 0).Begin()
				if _, err := warm.Read("kv", 3); err != nil {
					t.Fatalf("warm read: %v", err)
				}
				if err := warm.Commit(); err != nil {
					t.Fatalf("warm commit: %v", err)
				}
				mv := c.Session(1, 0).Begin()
				if err := mv.Write("kv", 3, u64(99)); err != nil {
					t.Fatalf("move write: %v", err)
				}
				if err := mv.Commit(); err != nil {
					t.Fatalf("move commit: %v", err)
				}
				stale := c.Session(0, 0).Begin()
				if _, err := stale.Read("kv", 3); err != nil {
					t.Fatalf("stale hit read: %v", err)
				}
				return stale.Commit()
			},
		},
		{
			name: "lock-conflict",
			kind: pandora.AbortLockConflict,
			cfg:  nil,
			run: func(t *testing.T, c *pandora.Cluster) error {
				holder := c.Session(0, 0).Begin()
				if err := holder.Write("kv", 7, u64(1)); err != nil {
					t.Fatalf("holder write: %v", err)
				}
				// holder keeps 7's write lock; the read hits it.
				reader := c.Session(1, 0).Begin()
				_, err := reader.Read("kv", 7)
				if err == nil {
					t.Fatal("read under a held lock succeeded")
				}
				return err
			},
		},
		{
			name: "steal",
			kind: pandora.AbortSteal,
			cfg:  nil,
			run: func(t *testing.T, c *pandora.Cluster) error {
				// claimer publishes an in-flight insert claim for a fresh
				// key; the racing insert finds the claim held by a live
				// (non-stray) coordinator and aborts on the steal path.
				claimer := c.Session(0, 0).Begin()
				if err := claimer.Insert("kv", 1000, u64(1)); err != nil {
					t.Fatalf("claimer insert: %v", err)
				}
				racer := c.Session(1, 0).Begin()
				err := racer.Insert("kv", 1000, u64(2))
				if err == nil {
					t.Fatal("racing insert of a claimed key succeeded")
				}
				return err
			},
		},
		{
			name: "fault",
			kind: pandora.AbortFault,
			cfg:  nil,
			run: func(t *testing.T, c *pandora.Cluster) error {
				// Partition node 0 from every memory server: the read's
				// verbs fail and the transaction aborts on the fault path.
				c.PartitionLink(0, 0)
				c.PartitionLink(0, 1)
				tx := c.Session(0, 0).Begin()
				_, err := tx.Read("kv", 2)
				if err == nil {
					t.Fatal("read over a fully partitioned fabric succeeded")
				}
				return err
			},
		},
		{
			name:    "other",
			kind:    pandora.AbortOther,
			cfg:     nil,
			errless: true, // a clean user Abort returns nil but is counted
			run: func(t *testing.T, c *pandora.Cluster) error {
				tx := c.Session(0, 0).Begin()
				if err := tx.Write("kv", 9, u64(4)); err != nil {
					t.Fatalf("write: %v", err)
				}
				return tx.Abort() // explicit user abort
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testConfig()
			if tc.cfg != nil {
				tc.cfg(&cfg)
			}
			c, err := pandora.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			if err := c.LoadN("kv", 32, func(k pandora.Key) []byte { return u64(uint64(k)) }); err != nil {
				t.Fatal(err)
			}

			before := c.MetricsSnapshot()
			err = tc.run(t, c)
			delta := c.MetricsSnapshot().Sub(before)

			if tc.errless {
				if err != nil {
					t.Fatalf("scenario error = %v, want nil", err)
				}
			} else {
				if !pandora.IsAborted(err) {
					t.Fatalf("scenario error = %v, want an abort", err)
				}
				kind, ok := pandora.AbortKindOf(err)
				if !ok || kind != tc.kind {
					t.Fatalf("AbortKindOf = (%v, %v), want (%v, true); err: %v", kind, ok, tc.kind, err)
				}
			}
			for _, a := range delta.Aborts {
				want := uint64(0)
				if a.Reason == tc.kind.String() {
					want = 1
				}
				if a.Count != want {
					t.Errorf("abort counter %s = %d, want %d (no cross-talk); err: %v", a.Reason, a.Count, want, err)
				}
			}
		})
	}
}
